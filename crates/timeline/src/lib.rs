//! # ccsim-timeline — windowed time-series observability
//!
//! The run outcome answers *whether* a population converged; this crate
//! answers *when and how*. A [`Timeline`] is a digest-inert, bounded-memory
//! sampler the runner feeds at its existing slice boundaries: it closes one
//! row per configured sim-time window, recording per-flow series (goodput,
//! cwnd, srtt, inflight, retransmits), per-link series (utilization, queue
//! depth, drops, CE marks), and aggregate series (per-window JFI and
//! goodput) into lockstep columnar rings under a global byte budget.
//!
//! Everything the sampler touches is read-only simulator state, so capture
//! cannot perturb the run — the digest-inertness tests in the workspace
//! prove outcome digests stay byte-identical with the timeline on or off.
//!
//! Row semantics (shared with the window-boundary proptests):
//!
//! * the sampler is armed with window width `w`; a row closes at the first
//!   slice boundary at or after each multiple of `w`;
//! * each row spans `(prev_row_end, now]` — spans tile the run, so the
//!   per-row deltas telescope exactly back to the cumulative counters and
//!   no sample is lost or double-counted at slice edges;
//! * a forced close (warm-up boundary, end of run) emits a possibly-short
//!   row so counter resets never corrupt a delta.

pub mod export;
pub mod ring;
pub mod serve;

use ccsim_analysis::{jain_fairness_index, time_to_alpha_fair};
use ccsim_sim::{SimDuration, SimTime};
use ring::ColumnSet;

/// Series recorded per sampled flow, in column order.
pub const FLOW_SERIES: [&str; 5] = [
    "goodput_bps",
    "cwnd_bytes",
    "srtt_secs",
    "inflight_bytes",
    "retrans",
];

/// Series recorded per link, in column order.
pub const LINK_SERIES: [&str; 4] = ["utilization", "queue_bytes", "drops", "ce_marks"];

/// Aggregate series (over *all* flows, not just the sampled subset), in
/// column order. These lead the column list.
pub const AGG_SERIES: [&str; 2] = ["jfi", "goodput_bps"];

/// Finite sentinel stored in the JFI column for an idle window (no flow
/// delivered a byte, so [`jain_fairness_index`] is undefined). JFI is
/// strictly positive whenever defined, so any negative cell means "idle".
///
/// Earlier versions stored `NaN` here; that leaked non-finite floats to
/// every raw-row consumer (the `.cctl` dump, Prometheus republishers,
/// ad-hoc column readers) and made row equality checks lie. Readers that
/// want the optional view should use [`Timeline::jfi_series`] or compare
/// against zero, never `is_nan`.
pub const IDLE_JFI: f64 = -1.0;

/// Timeline capture configuration.
///
/// All-integer so the containing observe options stay `Copy + Eq`; α is
/// expressed in permille (`900` → 0.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Window width in sim time; a row closes at the first slice boundary
    /// at or after each multiple of this.
    pub window: SimDuration,
    /// Global byte budget for the retained rows (oldest evicted first).
    pub budget_bytes: u64,
    /// Per-flow series are kept for at most this many flows (the first N
    /// by flow id); aggregate series always cover every flow.
    pub max_flows: u32,
    /// α for time-to-α-fair, in permille (900 → JFI ≥ 0.9).
    pub alpha_permille: u32,
}

impl Default for TimelineConfig {
    fn default() -> TimelineConfig {
        TimelineConfig {
            window: SimDuration::from_millis(1000),
            budget_bytes: 4 * 1024 * 1024,
            max_flows: 64,
            alpha_permille: 900,
        }
    }
}

impl TimelineConfig {
    /// α as a fraction.
    pub fn alpha(&self) -> f64 {
        self.alpha_permille as f64 / 1000.0
    }
}

/// One flow's instantaneous + cumulative readings at a slice boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowPoint {
    /// Cumulative retransmissions (the sampler diffs consecutive rows).
    pub retransmits: u64,
    /// Current congestion window, bytes.
    pub cwnd_bytes: u64,
    /// Smoothed RTT, seconds (0 when unmeasured).
    pub srtt_secs: f64,
    /// Bytes currently in flight.
    pub inflight_bytes: u64,
}

/// One link's instantaneous + cumulative readings at a slice boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkPoint {
    /// Cumulative bytes transmitted (diffed per row).
    pub transmitted_bytes: u64,
    /// Cumulative packets dropped (diffed per row).
    pub dropped_pkts: u64,
    /// Cumulative packets CE-marked (diffed per row).
    pub ce_marked_pkts: u64,
    /// Current queue backlog, bytes.
    pub queue_bytes: u64,
    /// Link rate, bytes per second (for utilization).
    pub rate_bytes_per_sec: f64,
}

/// Sim-deterministic capture summary, destined for the run manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSummary {
    /// Configured window width, seconds.
    pub window_secs: f64,
    /// Rows ever closed.
    pub rows: u64,
    /// Rows still retained in the rings.
    pub retained: u64,
    /// Rows evicted to stay under budget.
    pub evicted: u64,
    /// Flows with per-flow series (≤ `max_flows`).
    pub flows_sampled: u32,
    /// Total series columns.
    pub series: u32,
    /// α used for time-to-α-fair.
    pub alpha: f64,
    /// End time (seconds) of the first window after which JFI stayed ≥ α,
    /// over the retained measurement rows. `None`: never converged (or no
    /// measurement rows).
    pub time_to_alpha_fair: Option<f64>,
    /// JFI of the last retained row.
    pub final_jfi: Option<f64>,
}

/// The windowed sampler. Feed it every slice boundary via [`Timeline::wants_row`]
/// + [`Timeline::push_row`]; it closes rows on its own window grid.
#[derive(Debug, Clone)]
pub struct Timeline {
    cfg: TimelineConfig,
    n_flows: usize,
    n_links: usize,
    sampled_flows: usize,
    columns: Vec<String>,
    rows: ColumnSet,
    last_row_t: SimTime,
    next_boundary: SimTime,
    /// First row index that lies past the warm-up boundary (rows before it
    /// are excluded from convergence diagnostics).
    measured_from: u64,
    prev_delivered: Vec<u64>,
    prev_retrans: Vec<u64>,
    prev_link_tx: Vec<u64>,
    prev_link_drops: Vec<u64>,
    prev_link_ce: Vec<u64>,
}

impl Timeline {
    /// A sampler starting at `start` (usually `SimTime::ZERO`) for a run
    /// with `n_flows` flows and `n_links` links.
    pub fn new(cfg: TimelineConfig, n_flows: usize, n_links: usize, start: SimTime) -> Timeline {
        let sampled_flows = n_flows.min(cfg.max_flows as usize);
        let mut columns = Vec::new();
        for s in AGG_SERIES {
            columns.push(format!("agg/{s}"));
        }
        for f in 0..sampled_flows {
            for s in FLOW_SERIES {
                columns.push(format!("flow{f}/{s}"));
            }
        }
        for l in 0..n_links {
            for s in LINK_SERIES {
                columns.push(format!("link{l}/{s}"));
            }
        }
        let rows = ColumnSet::new(columns.len(), cfg.budget_bytes);
        Timeline {
            cfg,
            n_flows,
            n_links,
            sampled_flows,
            columns,
            rows,
            last_row_t: start,
            next_boundary: next_multiple(start, cfg.window),
            measured_from: 0,
            prev_delivered: vec![0; n_flows],
            prev_retrans: vec![0; sampled_flows],
            prev_link_tx: vec![0; n_links],
            prev_link_drops: vec![0; n_links],
            prev_link_ce: vec![0; n_links],
        }
    }

    /// The capture configuration.
    pub fn config(&self) -> &TimelineConfig {
        &self.cfg
    }

    /// Number of flows with per-flow series.
    pub fn sampled_flows(&self) -> usize {
        self.sampled_flows
    }

    /// Column names, in row-value order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The underlying row storage.
    pub fn rows(&self) -> &ColumnSet {
        &self.rows
    }

    /// True when the window grid calls for a row at slice boundary `now`.
    pub fn wants_row(&self, now: SimTime) -> bool {
        now >= self.next_boundary && now > self.last_row_t
    }

    /// Close the row `(last_row_end, now]`.
    ///
    /// `delivered_all` is the cumulative per-flow delivered-bytes vector
    /// over *all* flows; `flows` carries the first [`Timeline::sampled_flows`]
    /// flows; `links` covers every link. A zero-span call (repeat `now`)
    /// is a no-op, so forced closes compose with grid closes.
    pub fn push_row(
        &mut self,
        now: SimTime,
        delivered_all: &[u64],
        flows: &[FlowPoint],
        links: &[LinkPoint],
    ) {
        assert_eq!(delivered_all.len(), self.n_flows, "delivered vector arity");
        assert_eq!(flows.len(), self.sampled_flows, "flow point arity");
        assert_eq!(links.len(), self.n_links, "link point arity");
        if now <= self.last_row_t {
            return;
        }
        let span = (now - self.last_row_t).as_secs_f64();
        let mut values = Vec::with_capacity(self.columns.len());

        // Aggregate series over every flow.
        let deltas: Vec<f64> = delivered_all
            .iter()
            .zip(&self.prev_delivered)
            .map(|(&cur, &prev)| cur.saturating_sub(prev) as f64)
            .collect();
        values.push(jain_fairness_index(&deltas).unwrap_or(IDLE_JFI));
        values.push(deltas.iter().sum::<f64>() / span);

        for (f, point) in flows.iter().enumerate() {
            let goodput = delivered_all[f].saturating_sub(self.prev_delivered[f]) as f64 / span;
            values.push(goodput);
            values.push(point.cwnd_bytes as f64);
            values.push(point.srtt_secs);
            values.push(point.inflight_bytes as f64);
            values.push(point.retransmits.saturating_sub(self.prev_retrans[f]) as f64);
        }
        for (l, point) in links.iter().enumerate() {
            let tx = point.transmitted_bytes.saturating_sub(self.prev_link_tx[l]) as f64;
            let capacity = point.rate_bytes_per_sec * span;
            values.push(if capacity > 0.0 { tx / capacity } else { 0.0 });
            values.push(point.queue_bytes as f64);
            values.push(point.dropped_pkts.saturating_sub(self.prev_link_drops[l]) as f64);
            values.push(point.ce_marked_pkts.saturating_sub(self.prev_link_ce[l]) as f64);
        }
        self.rows.push(now.as_secs_f64(), span, &values);

        self.prev_delivered.copy_from_slice(delivered_all);
        for (f, point) in flows.iter().enumerate() {
            self.prev_retrans[f] = point.retransmits;
        }
        for (l, point) in links.iter().enumerate() {
            self.prev_link_tx[l] = point.transmitted_bytes;
            self.prev_link_drops[l] = point.dropped_pkts;
            self.prev_link_ce[l] = point.ce_marked_pkts;
        }
        self.last_row_t = now;
        self.next_boundary = next_multiple(now, self.cfg.window);
    }

    /// Set the delta baselines from the current cumulative counters
    /// without closing a row. Called once right after construction, so a
    /// run resumed from a mid-run checkpoint (non-zero counters) does not
    /// attribute the whole pre-resume history to its first window; for a
    /// fresh run every counter is zero and priming changes nothing.
    pub fn prime(&mut self, delivered_all: &[u64], flows: &[FlowPoint], links: &[LinkPoint]) {
        assert_eq!(delivered_all.len(), self.n_flows, "delivered vector arity");
        assert_eq!(flows.len(), self.sampled_flows, "flow point arity");
        assert_eq!(links.len(), self.n_links, "link point arity");
        self.prev_delivered.copy_from_slice(delivered_all);
        for (f, point) in flows.iter().enumerate() {
            self.prev_retrans[f] = point.retransmits;
        }
        for (l, point) in links.iter().enumerate() {
            self.prev_link_tx[l] = point.transmitted_bytes;
            self.prev_link_drops[l] = point.dropped_pkts;
            self.prev_link_ce[l] = point.ce_marked_pkts;
        }
    }

    /// Note that the links' cumulative counters were just reset to zero
    /// (the runner does this at the warm-up boundary, after a forced row
    /// close). Re-baselines the link deltas so the next row is not
    /// negative-clamped to zero.
    pub fn note_link_reset(&mut self) {
        self.prev_link_tx.iter_mut().for_each(|v| *v = 0);
        self.prev_link_drops.iter_mut().for_each(|v| *v = 0);
        self.prev_link_ce.iter_mut().for_each(|v| *v = 0);
        // Rows so far are warm-up; convergence diagnostics start after.
        self.measured_from = self.rows.pushed();
    }

    /// Row end instants (seconds) and per-row JFI over the retained
    /// *measurement* rows (warm-up rows excluded); `None` JFI entries are
    /// idle windows.
    pub fn jfi_series(&self) -> (Vec<f64>, Vec<Option<f64>>) {
        let skip = self.measured_from.saturating_sub(self.rows.evicted()) as usize;
        let times = self.rows.times().skip(skip).collect();
        let jfi = self
            .rows
            .column(0)
            .skip(skip)
            // `< 0.0` catches [`IDLE_JFI`]; the non-finite arm is defensive
            // only (rows have stored no NaN since the sentinel went finite).
            .map(|v| {
                if v < 0.0 || !v.is_finite() {
                    None
                } else {
                    Some(v)
                }
            })
            .collect();
        (times, jfi)
    }

    /// Approximate resident bytes of the retained rows.
    pub fn memory_bytes(&self) -> usize {
        self.rows.memory_bytes()
    }

    /// The sim-deterministic capture summary for the run manifest.
    pub fn summary(&self) -> TimelineSummary {
        let (times, jfi) = self.jfi_series();
        TimelineSummary {
            window_secs: self.cfg.window.as_secs_f64(),
            rows: self.rows.pushed(),
            retained: self.rows.len() as u64,
            evicted: self.rows.evicted(),
            flows_sampled: self.sampled_flows as u32,
            series: self.columns.len() as u32,
            alpha: self.cfg.alpha(),
            time_to_alpha_fair: time_to_alpha_fair(&times, &jfi, self.cfg.alpha()),
            final_jfi: jfi.last().copied().flatten(),
        }
    }
}

/// The smallest multiple of `window` strictly after `t`.
fn next_multiple(t: SimTime, window: SimDuration) -> SimTime {
    let w = window.as_nanos().max(1);
    SimTime::from_nanos((t.as_nanos() / w + 1) * w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn flows(points: &[(u64, u64)]) -> Vec<FlowPoint> {
        points
            .iter()
            .map(|&(retransmits, cwnd_bytes)| FlowPoint {
                retransmits,
                cwnd_bytes,
                srtt_secs: 0.02,
                inflight_bytes: cwnd_bytes / 2,
            })
            .collect()
    }

    #[test]
    fn rows_close_on_the_window_grid() {
        let cfg = TimelineConfig {
            window: SimDuration::from_millis(100),
            ..TimelineConfig::default()
        };
        let mut tl = Timeline::new(cfg, 2, 0, SimTime::ZERO);
        // Slices every 40 ms: boundaries 40, 80, 120, 160, 200, ...
        assert!(!tl.wants_row(t(40)));
        assert!(!tl.wants_row(t(80)));
        assert!(tl.wants_row(t(120)), "first boundary past 100 ms");
        tl.push_row(t(120), &[1200, 600], &flows(&[(0, 10), (0, 10)]), &[]);
        assert!(!tl.wants_row(t(160)));
        assert!(tl.wants_row(t(200)), "boundary exactly on the grid");
        tl.push_row(t(200), &[2000, 1400], &flows(&[(1, 10), (0, 10)]), &[]);

        let rows = tl.rows();
        assert_eq!(rows.len(), 2);
        let (end, span, v) = rows.row(1).unwrap();
        assert!((end - 0.2).abs() < 1e-12);
        assert!((span - 0.08).abs() < 1e-12);
        // flow0 goodput: 800 bytes over 80 ms.
        assert!((v[2] - 800.0 / 0.08).abs() < 1e-9);
        // flow0 retrans delta.
        assert!((v[6] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_span_push_is_a_no_op() {
        let mut tl = Timeline::new(TimelineConfig::default(), 1, 0, SimTime::ZERO);
        tl.push_row(t(1000), &[100], &flows(&[(0, 1)]), &[]);
        let before = tl.rows().len();
        tl.push_row(t(1000), &[100], &flows(&[(0, 1)]), &[]);
        assert_eq!(tl.rows().len(), before);
    }

    #[test]
    fn link_reset_rebaselines_instead_of_clamping() {
        let cfg = TimelineConfig {
            window: SimDuration::from_millis(100),
            ..TimelineConfig::default()
        };
        let mut tl = Timeline::new(cfg, 1, 1, SimTime::ZERO);
        let link = |tx: u64| LinkPoint {
            transmitted_bytes: tx,
            dropped_pkts: 0,
            ce_marked_pkts: 0,
            queue_bytes: 0,
            rate_bytes_per_sec: 125_000.0,
        };
        // Warm-up row, then the runner resets link counters.
        tl.push_row(t(100), &[1000], &flows(&[(0, 1)]), &[link(12_500)]);
        tl.note_link_reset();
        // Post-reset counters restart from zero; utilization must use the
        // fresh baseline (6 250 bytes over 100 ms at 125 kB/s = 0.5).
        tl.push_row(t(200), &[2000], &flows(&[(0, 1)]), &[link(6_250)]);
        let (_, _, v) = tl.rows().row(1).unwrap();
        let util = v[AGG_SERIES.len() + FLOW_SERIES.len()];
        assert!((util - 0.5).abs() < 1e-9, "utilization {util}");
    }

    #[test]
    fn jfi_series_skips_warmup_and_summary_converges() {
        let cfg = TimelineConfig {
            window: SimDuration::from_millis(100),
            ..TimelineConfig::default()
        };
        let mut tl = Timeline::new(cfg, 2, 0, SimTime::ZERO);
        // Warm-up: wildly unfair.
        tl.push_row(t(100), &[1000, 0], &flows(&[(0, 1), (0, 1)]), &[]);
        tl.note_link_reset();
        // Measurement: perfectly fair deltas.
        tl.push_row(t(200), &[1500, 500], &flows(&[(0, 1), (0, 1)]), &[]);
        tl.push_row(t(300), &[2000, 1000], &flows(&[(0, 1), (0, 1)]), &[]);

        let (times, jfi) = tl.jfi_series();
        assert_eq!(times.len(), 2, "warm-up row excluded");
        assert!(jfi.iter().all(|j| (j.unwrap() - 1.0).abs() < 1e-12));

        let summary = tl.summary();
        assert_eq!(summary.rows, 3);
        assert_eq!(summary.retained, 3);
        assert_eq!(summary.time_to_alpha_fair, Some(0.2));
        assert!((summary.final_jfi.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_flow_series_cap_leaves_aggregates_global() {
        let cfg = TimelineConfig {
            window: SimDuration::from_millis(100),
            max_flows: 2,
            ..TimelineConfig::default()
        };
        let mut tl = Timeline::new(cfg, 4, 0, SimTime::ZERO);
        assert_eq!(tl.sampled_flows(), 2);
        assert_eq!(tl.columns().len(), AGG_SERIES.len() + 2 * FLOW_SERIES.len());
        // All four flows fair -> JFI 1 even though only two have series.
        tl.push_row(
            t(100),
            &[500, 500, 500, 500],
            &flows(&[(0, 1), (0, 1)]),
            &[],
        );
        let (_, _, v) = tl.rows().row(0).unwrap();
        assert!((v[0] - 1.0).abs() < 1e-12);
        // Aggregate goodput covers all flows: 2000 bytes over 100 ms.
        assert!((v[1] - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn idle_window_jfi_is_absent_not_zero() {
        let mut tl = Timeline::new(TimelineConfig::default(), 2, 0, SimTime::ZERO);
        tl.push_row(t(1000), &[0, 0], &flows(&[(0, 1), (0, 1)]), &[]);
        let (_, jfi) = tl.jfi_series();
        assert_eq!(jfi, vec![None]);
        assert_eq!(tl.summary().final_jfi, None);
    }

    #[test]
    fn idle_windows_store_a_finite_sentinel_never_nan() {
        // Regression: all-zero delta windows used to store NaN in the JFI
        // column, which leaked into raw-row consumers and broke equality.
        let mut tl = Timeline::new(TimelineConfig::default(), 2, 0, SimTime::ZERO);
        tl.push_row(t(1000), &[0, 0], &flows(&[(0, 1), (0, 1)]), &[]);
        tl.push_row(t(2000), &[500, 500], &flows(&[(0, 1), (0, 1)]), &[]);
        tl.push_row(t(3000), &[500, 500], &flows(&[(0, 1), (0, 1)]), &[]);
        for r in 0..tl.rows().len() {
            let (_, _, v) = tl.rows().row(r).unwrap();
            assert!(
                v.iter().all(|c| c.is_finite()),
                "row {r} carries a non-finite cell: {v:?}"
            );
        }
        let (_, _, idle) = tl.rows().row(0).unwrap();
        assert_eq!(idle[0], IDLE_JFI);
        // The optional view still reports idle windows as absent, and the
        // summary ignores them on both ends.
        let (_, jfi) = tl.jfi_series();
        assert_eq!(jfi[0], None);
        assert!((jfi[1].unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(tl.summary().final_jfi, None, "trailing idle window");
    }
}
