//! Bounded columnar storage for windowed series.
//!
//! A [`ColumnSet`] is a set of lockstep ring buffers: one row per closed
//! window, one column per series, plus the row's end instant and span.
//! Like `ccsim-trace`'s `SampleRing`, capacity derives from a byte budget
//! and the oldest rows are evicted first — a multi-hour run keeps the
//! most recent history rather than OOMing or stopping capture.

use std::collections::VecDeque;

/// One value cell is an `f64`; a row costs `8 * (2 + n_cols)` bytes
/// (time + span + one cell per column).
const CELL_BYTES: usize = std::mem::size_of::<f64>();

/// Lockstep columnar rings under a shared byte budget.
#[derive(Debug, Clone)]
pub struct ColumnSet {
    times: VecDeque<f64>,
    spans: VecDeque<f64>,
    cols: Vec<VecDeque<f64>>,
    cap_rows: usize,
    pushed: u64,
    evicted: u64,
}

impl ColumnSet {
    /// A column set with `n_cols` series whose retained rows fit in
    /// `budget_bytes`. At least one row is always retained.
    pub fn new(n_cols: usize, budget_bytes: u64) -> ColumnSet {
        let row_bytes = (CELL_BYTES * (2 + n_cols)) as u64;
        let cap_rows = (budget_bytes / row_bytes.max(1)).max(1) as usize;
        ColumnSet {
            times: VecDeque::new(),
            spans: VecDeque::new(),
            cols: vec![VecDeque::new(); n_cols],
            cap_rows,
            pushed: 0,
            evicted: 0,
        }
    }

    /// Number of series columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Retained row count.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no rows are retained.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Total rows ever pushed (retained + evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Rows dropped to stay under budget.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retention cap in rows (derived from the byte budget).
    pub fn cap_rows(&self) -> usize {
        self.cap_rows
    }

    /// Append one row; evicts the oldest row when at capacity.
    ///
    /// # Panics
    /// Panics when `values.len() != n_cols()`.
    pub fn push(&mut self, t_secs: f64, span_secs: f64, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.cols.len(),
            "row arity must match column count"
        );
        if self.times.len() == self.cap_rows {
            self.times.pop_front();
            self.spans.pop_front();
            for col in &mut self.cols {
                col.pop_front();
            }
            self.evicted += 1;
        }
        self.times.push_back(t_secs);
        self.spans.push_back(span_secs);
        for (col, &v) in self.cols.iter_mut().zip(values) {
            col.push_back(v);
        }
        self.pushed += 1;
    }

    /// Row end instants (seconds), oldest first.
    pub fn times(&self) -> impl Iterator<Item = f64> + '_ {
        self.times.iter().copied()
    }

    /// Row spans (seconds), oldest first.
    pub fn spans(&self) -> impl Iterator<Item = f64> + '_ {
        self.spans.iter().copied()
    }

    /// Column `c`'s retained values, oldest first.
    ///
    /// # Panics
    /// Panics when `c >= n_cols()`.
    pub fn column(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        self.cols[c].iter().copied()
    }

    /// Row `r` as `(t_secs, span_secs, values)` with `r = 0` the oldest
    /// retained row. `None` past the end.
    pub fn row(&self, r: usize) -> Option<(f64, f64, Vec<f64>)> {
        let t = *self.times.get(r)?;
        let span = *self.spans.get(r)?;
        let values = self.cols.iter().map(|c| c[r]).collect();
        Some((t, span, values))
    }

    /// Approximate resident bytes (buffers + header).
    pub fn memory_bytes(&self) -> usize {
        let buf = |d: &VecDeque<f64>| d.capacity() * CELL_BYTES;
        std::mem::size_of::<ColumnSet>()
            + buf(&self.times)
            + buf(&self.spans)
            + self.cols.iter().map(buf).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_derives_capacity_and_floors_at_one() {
        // 3 cols -> 40 bytes/row; 200-byte budget -> 5 rows.
        assert_eq!(ColumnSet::new(3, 200).cap_rows(), 5);
        assert_eq!(ColumnSet::new(1000, 1).cap_rows(), 1);
    }

    #[test]
    fn push_beyond_capacity_drops_oldest_in_lockstep() {
        let mut cs = ColumnSet::new(2, 2 * 8 * 4); // cap = 2 rows
        cs.push(1.0, 1.0, &[10.0, 100.0]);
        cs.push(2.0, 1.0, &[20.0, 200.0]);
        cs.push(3.0, 1.0, &[30.0, 300.0]);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.pushed(), 3);
        assert_eq!(cs.evicted(), 1);
        assert_eq!(cs.times().collect::<Vec<_>>(), vec![2.0, 3.0]);
        assert_eq!(cs.column(1).collect::<Vec<_>>(), vec![200.0, 300.0]);
        assert_eq!(cs.row(0), Some((2.0, 1.0, vec![20.0, 200.0])));
        assert_eq!(cs.row(2), None);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        ColumnSet::new(2, 1024).push(1.0, 1.0, &[1.0]);
    }
}
