//! Property tests of the row semantics at slice edges: for ANY slice
//! boundary pattern and ANY window width, the rows closed by the sampler
//! tile the run — spans chain with no gap or overlap, and the per-row
//! deltas telescope exactly back to the cumulative counters, so no sample
//! is lost or double-counted where a slice meets a window boundary.

use ccsim_sim::{SimDuration, SimTime};
use ccsim_timeline::{FlowPoint, LinkPoint, Timeline, TimelineConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rows_tile_and_deltas_telescope(
        window_ms in 1u64..500,
        slice_ms in prop::collection::vec(1u64..200, 1..60),
        increments in prop::collection::vec((0u64..10_000, 0u64..5, 0u64..20_000), 1..60),
    ) {
        let cfg = TimelineConfig {
            window: SimDuration::from_millis(window_ms),
            ..TimelineConfig::default()
        };
        let mut tl = Timeline::new(cfg, 1, 1, SimTime::ZERO);

        let mut now_ms = 0u64;
        let mut delivered = 0u64;
        let mut retrans = 0u64;
        let mut link_tx = 0u64;
        let mut pushed_at = Vec::new();
        for (i, dt) in slice_ms.iter().enumerate() {
            now_ms += dt;
            let (d, r, tx) = increments[i % increments.len()];
            delivered += d;
            retrans += r;
            link_tx += tx;
            let now = SimTime::from_millis(now_ms);
            if tl.wants_row(now) {
                let fp = FlowPoint {
                    retransmits: retrans,
                    cwnd_bytes: 1,
                    srtt_secs: 0.01,
                    inflight_bytes: 0,
                };
                let lp = LinkPoint {
                    transmitted_bytes: link_tx,
                    dropped_pkts: 0,
                    ce_marked_pkts: 0,
                    queue_bytes: 0,
                    rate_bytes_per_sec: 125_000.0,
                };
                tl.push_row(now, &[delivered], &[fp], &[lp]);
                pushed_at.push(now_ms);
            }
        }
        let rows = tl.rows();
        prop_assert_eq!(rows.pushed() as usize, pushed_at.len());
        prop_assert_eq!(rows.evicted(), 0, "tiny run must not evict");

        // Spans tile: each row's end minus its span is the previous end.
        let times: Vec<f64> = rows.times().collect();
        let spans: Vec<f64> = rows.spans().collect();
        let mut prev_end = 0.0;
        for (t, span) in times.iter().zip(&spans) {
            prop_assert!((t - span - prev_end).abs() < 1e-9,
                "gap/overlap at row ending {t}: span {span}, prev end {prev_end}");
            prop_assert!(*span > 0.0);
            prev_end = *t;
        }

        // Each row closed at the first slice boundary at/after a window
        // boundary: the previous row's window index is strictly smaller.
        for w in pushed_at.windows(2) {
            prop_assert!(w[0] / window_ms < w[1] / window_ms,
                "two rows inside one window: {} and {} (w={window_ms})", w[0], w[1]);
        }

        // Deltas telescope exactly: summing goodput*span (and retrans /
        // link-tx deltas) over all rows reproduces the cumulative totals
        // up to the last closed row — nothing lost, nothing double-counted.
        if !times.is_empty() {
            let goodput: f64 = rows.column(2).zip(&spans).map(|(g, s)| g * s).sum();
            let retrans_total: f64 = rows.column(6).sum();
            let util_bytes: f64 = rows
                .column(7)
                .zip(&spans)
                .map(|(u, s)| u * 125_000.0 * s)
                .sum();

            // Cumulative totals as of the last pushed row.
            let last = *pushed_at.last().unwrap();
            let mut cum_d = 0u64;
            let mut cum_r = 0u64;
            let mut cum_tx = 0u64;
            let mut ms = 0u64;
            for (i, dt) in slice_ms.iter().enumerate() {
                ms += dt;
                if ms > last {
                    break;
                }
                let (d, r, tx) = increments[i % increments.len()];
                cum_d += d;
                cum_r += r;
                cum_tx += tx;
            }
            prop_assert!((goodput - cum_d as f64).abs() < 1e-6 * (1.0 + cum_d as f64),
                "goodput·span sum {goodput} != delivered {cum_d}");
            prop_assert!((retrans_total - cum_r as f64).abs() < 1e-9);
            prop_assert!((util_bytes - cum_tx as f64).abs() < 1e-6 * (1.0 + cum_tx as f64),
                "utilization-implied bytes {util_bytes} != transmitted {cum_tx}");
        }
    }

    /// A forced mid-window close (the warm-up boundary) composes with grid
    /// closes: tiling and telescoping still hold around the reset.
    #[test]
    fn forced_close_and_link_reset_never_corrupt_deltas(
        window_ms in 5u64..100,
        warmup_ms in 1u64..150,
        steps in prop::collection::vec((1u64..40, 0u64..1_000), 2..40),
    ) {
        let cfg = TimelineConfig {
            window: SimDuration::from_millis(window_ms),
            ..TimelineConfig::default()
        };
        let mut tl = Timeline::new(cfg, 1, 1, SimTime::ZERO);
        let mut now_ms = 0u64;
        let mut tx_total = 0u64;   // what the wire actually carried
        let mut tx_counter = 0u64; // the resettable link counter
        let mut reset_done = false;
        let fp = FlowPoint { retransmits: 0, cwnd_bytes: 1, srtt_secs: 0.01, inflight_bytes: 0 };
        let lp = |tx| LinkPoint {
            transmitted_bytes: tx,
            dropped_pkts: 0,
            ce_marked_pkts: 0,
            queue_bytes: 0,
            rate_bytes_per_sec: 1_000.0,
        };
        for &(dt, tx) in &steps {
            now_ms += dt;
            tx_total += tx;
            tx_counter += tx;
            let now = SimTime::from_millis(now_ms);
            if !reset_done && now_ms >= warmup_ms {
                // Forced close before the counter reset, as the runner does.
                tl.push_row(now, &[0], &[fp], &[lp(tx_counter)]);
                tx_counter = 0;
                tl.note_link_reset();
                reset_done = true;
            } else if tl.wants_row(now) {
                tl.push_row(now, &[0], &[fp], &[lp(tx_counter)]);
            }
        }
        // Close out whatever remains so the totals are comparable.
        let end = SimTime::from_millis(now_ms + 1);
        tl.push_row(end, &[0], &[fp], &[lp(tx_counter)]);

        let rows = tl.rows();
        let spans: Vec<f64> = rows.spans().collect();
        let wire_bytes: f64 = rows
            .column(7)
            .zip(&spans)
            .map(|(u, s)| u * 1_000.0 * s)
            .sum();
        prop_assert!((wire_bytes - tx_total as f64).abs() < 1e-6 * (1.0 + tx_total as f64),
            "reset lost or double-counted bytes: {wire_bytes} != {tx_total}");
    }
}
