//! Property-based tests of the drop-tail link: conservation, ordering,
//! and rate compliance under randomized packet storms.

use ccsim_net::link::{Link, NextHop};
use ccsim_net::msg::Msg;
use ccsim_net::packet::{FlowId, Packet};
use ccsim_sim::{Bandwidth, Component, Ctx, SimDuration, SimTime, Simulator};
use proptest::prelude::*;

struct Sink {
    received: Vec<(SimTime, u64)>, // (arrival, seq)
    bytes: u64,
}

impl Component<Msg> for Sink {
    fn on_event(&mut self, now: SimTime, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Packet(p) = msg {
            self.received.push((now, p.seq));
            self.bytes += p.wire_bytes as u64;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every arrived packet is transmitted, dropped, or
    /// still queued; FIFO order is preserved; the sink never receives
    /// faster than the line rate allows.
    #[test]
    fn link_conserves_and_orders_packets(
        mbps in 1u64..1000,
        buffer_pkts in 0u64..64,
        arrivals in prop::collection::vec((0u64..2_000_000, 100u32..1600), 1..300),
    ) {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![], bytes: 0 });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(mbps),
            SimDuration::from_micros(50),
            buffer_pkts * 1600,
            NextHop::ToPacketDst,
        ));
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut total_bytes = 0u64;
        for (i, &(t_ns, size)) in sorted.iter().enumerate() {
            let mut p = Packet::data(FlowId(0), sink, i as u64, i as u64 + 1, SimTime::ZERO);
            p.wire_bytes = size;
            total_bytes += size as u64;
            sim.schedule(SimTime::from_nanos(t_ns), link, Msg::Packet(p));
        }
        sim.run();
        let stats = sim.component::<Link>(link).stats().clone();
        let backlog = sim.component::<Link>(link).backlog_bytes();
        // Conservation (queue drains fully once arrivals stop).
        prop_assert_eq!(backlog, 0);
        prop_assert_eq!(stats.arrived_pkts, sorted.len() as u64);
        prop_assert_eq!(stats.transmitted_pkts + stats.dropped_pkts, stats.arrived_pkts);
        prop_assert_eq!(stats.arrived_bytes, total_bytes);
        let sink_ref = sim.component::<Sink>(sink);
        prop_assert_eq!(sink_ref.received.len() as u64, stats.transmitted_pkts);
        prop_assert_eq!(sink_ref.bytes, stats.transmitted_bytes);
        // FIFO: sequence numbers arrive in increasing order (drop-tail
        // never reorders).
        for w in sink_ref.received.windows(2) {
            prop_assert!(w[0].1 < w[1].1, "reordered: {:?}", w);
            prop_assert!(w[0].0 <= w[1].0);
        }
        // Rate compliance: delivered bytes within what the line could
        // carry between first and last delivery (+1 packet of slack).
        if sink_ref.received.len() >= 2 {
            let span = sink_ref.received.last().unwrap().0
                - sink_ref.received.first().unwrap().0;
            let cap = Bandwidth::from_mbps(mbps).bytes_in(span) + 1600;
            prop_assert!(
                sink_ref.bytes <= cap + 1600,
                "delivered {} > capacity {}",
                sink_ref.bytes,
                cap
            );
        }
    }

    /// With an infinite buffer nothing is ever dropped, regardless of the
    /// arrival pattern.
    #[test]
    fn infinite_buffer_never_drops(
        arrivals in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![], bytes: 0 });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(1),
            SimDuration::ZERO,
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        for (i, &t_ns) in arrivals.iter().enumerate() {
            let p = Packet::data(FlowId(0), sink, i as u64 * 100, i as u64 * 100 + 100, SimTime::ZERO);
            sim.schedule(SimTime::from_nanos(t_ns), link, Msg::Packet(p));
        }
        sim.run();
        prop_assert_eq!(sim.component::<Link>(link).stats().dropped_pkts, 0);
        prop_assert_eq!(
            sim.component::<Sink>(sink).received.len(),
            arrivals.len()
        );
    }
}
