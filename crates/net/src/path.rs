//! Shared per-hop delivery arithmetic.
//!
//! Both [`Link`](crate::link::Link) (after serialization) and
//! [`DelayLine`](crate::delay::DelayLine) forward a packet "after some
//! latency"; before this module each call site composed its own
//! `base + extra` sum and `schedule_in` call. Centralizing the arithmetic
//! keeps fault-injected extra delay composed identically on every path and
//! gives per-hop latency one audited definition.

use crate::msg::Msg;
use crate::packet::Packet;
use ccsim_sim::{ComponentId, Ctx, SimDuration};

/// The one-way latency of a hop: base propagation plus any impairment
/// extra (fault-injected delay step, reorder hold-back).
#[inline]
pub fn hop_latency(prop_delay: SimDuration, extra: SimDuration) -> SimDuration {
    prop_delay + extra
}

/// Schedule `p`'s delivery to `dst` after `latency`. FIFO order among
/// equal latencies is preserved by the engine's tie-break, so a constant
/// latency can never reorder a hop's departures.
#[inline]
pub fn deliver_after(ctx: &mut Ctx<'_, Msg>, latency: SimDuration, dst: ComponentId, p: Packet) {
    ctx.schedule_in(latency, dst, Msg::Packet(p));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_latency_is_plain_composition() {
        let base = SimDuration::from_millis(5);
        assert_eq!(hop_latency(base, SimDuration::ZERO), base);
        assert_eq!(
            hop_latency(base, SimDuration::from_millis(20)),
            SimDuration::from_millis(25)
        );
    }
}
