//! A pure delay element — the `netem` equivalent.
//!
//! [`DelayLine`] forwards every packet unchanged after a fixed delay, with
//! infinite capacity and no reordering. The paper used `tc netem` on the
//! receiver hosts to impose per-flow base RTTs; in ccsim the same effect is
//! usually folded into endpoint scheduling (zero extra events), but the
//! explicit element is provided for topologies that want the delay as a
//! first-class hop (e.g. ablations measuring event-count overhead).

use crate::msg::Msg;
use crate::path::{deliver_after, hop_latency};
use ccsim_sim::{
    Component, ComponentId, Ctx, SimDuration, SimTime, SnapError, SnapReader, SnapWriter,
};

/// Where a delay line forwards packets.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DelayNext {
    /// A fixed downstream component.
    Fixed(ComponentId),
    /// The endpoint named in [`crate::packet::Packet::dst`].
    ToPacketDst,
}

/// Forwards packets after a constant delay. FIFO order is preserved because
/// equal delays map equal-ordered arrivals to equal-ordered departures.
pub struct DelayLine {
    delay: SimDuration,
    next: DelayNext,
    forwarded: u64,
}

impl DelayLine {
    /// A delay line adding `delay` to every traversal.
    pub fn new(delay: SimDuration, next: DelayNext) -> DelayLine {
        DelayLine {
            delay,
            next,
            forwarded: 0,
        }
    }

    /// The configured delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Serialize mutable state for a checkpoint (delay and next hop are
    /// configuration).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.forwarded);
    }

    /// Overlay checkpointed state.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.forwarded = r.u64()?;
        Ok(())
    }
}

impl Component<Msg> for DelayLine {
    fn on_event(&mut self, _now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Packet(p) => {
                self.forwarded += 1;
                let dst = match self.next {
                    DelayNext::Fixed(id) => id,
                    DelayNext::ToPacketDst => p.dst,
                };
                deliver_after(ctx, hop_latency(self.delay, SimDuration::ZERO), dst, p);
            }
            // A delay line arms no timers of its own; with the token-based
            // cancellation API a timer landing here means a mis-routed or
            // stale event escaped its owner's cancel — fail loudly in
            // debug instead of silently swallowing it.
            Msg::Timer(t) => {
                debug_assert!(false, "DelayLine received stray timer kind {}", t.kind());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};
    use ccsim_sim::Simulator;

    struct Sink {
        received: Vec<(SimTime, u64)>,
    }

    impl Component<Msg> for Sink {
        fn on_event(&mut self, now: SimTime, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Packet(p) = msg {
                self.received.push((now, p.seq));
            }
        }
    }

    #[test]
    fn adds_exactly_the_configured_delay() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let dl = sim.add_component(DelayLine::new(
            SimDuration::from_millis(20),
            DelayNext::ToPacketDst,
        ));
        let p = Packet::data(FlowId(0), sink, 0, 100, SimTime::ZERO);
        sim.schedule(SimTime::from_millis(5), dl, Msg::Packet(p));
        sim.run();
        let rx = &sim.component::<Sink>(sink).received;
        assert_eq!(rx, &[(SimTime::from_millis(25), 0)]);
        assert_eq!(sim.component::<DelayLine>(dl).forwarded(), 1);
    }

    #[test]
    fn preserves_fifo_order() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let dl = sim.add_component(DelayLine::new(
            SimDuration::from_millis(10),
            DelayNext::ToPacketDst,
        ));
        for i in 0..50u64 {
            let p = Packet::data(FlowId(0), sink, i, i + 1, SimTime::ZERO);
            sim.schedule(SimTime::from_micros(i), dl, Msg::Packet(p));
        }
        sim.run();
        let seqs: Vec<u64> = sim
            .component::<Sink>(sink)
            .received
            .iter()
            .map(|&(_, s)| s)
            .collect();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
    }
}
