//! Packet representation.
//!
//! Packets are small `Copy` values: the study never inspects payload bits,
//! only sizes and timing, so a packet is metadata — flow id, sequence range,
//! wire size, ACK state — plus the destination component. Keeping packets
//! `Copy` (no heap payload) is what lets the simulator move tens of millions
//! of them per wall-clock second.
//!
//! Sequence numbers are 64-bit byte offsets that never wrap. Real TCP uses a
//! 32-bit wrapping space; wrap handling is irrelevant to every phenomenon the
//! paper measures, and 64 bits cannot wrap within any feasible experiment
//! (2^64 bytes at 10 Gbps is ~460 years).

use ccsim_sim::{ComponentId, SimTime, SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one TCP flow (one sender/receiver pair) within an experiment.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The flow index as a `usize`, for indexing per-flow tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// Maximum number of SACK blocks carried per ACK.
///
/// Linux advertises at most 3 when the timestamp option is present (RFC 2018
/// allows 4 without); 3 matches the stacks the paper measured.
pub const MAX_SACK_BLOCKS: usize = 3;

/// A half-open `[start, end)` range of SACKed bytes.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SackBlock {
    /// First byte covered.
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
}

impl SackBlock {
    /// Number of bytes covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True iff the block covers no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A fixed-capacity, allocation-free list of SACK blocks.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SackBlocks {
    blocks: [SackBlock; MAX_SACK_BLOCKS],
    len: u8,
}

impl SackBlocks {
    /// The empty list.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [SackBlock { start: 0, end: 0 }; MAX_SACK_BLOCKS],
        len: 0,
    };

    /// Append a block; silently ignored once full (mirrors the wire-format
    /// truncation of real SACK options).
    #[inline]
    pub fn push(&mut self, b: SackBlock) {
        if (self.len as usize) < MAX_SACK_BLOCKS && !b.is_empty() {
            self.blocks[self.len as usize] = b;
            self.len += 1;
        }
    }

    /// The populated blocks.
    #[inline]
    pub fn as_slice(&self) -> &[SackBlock] {
        &self.blocks[..self.len as usize]
    }

    /// Number of populated blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff no blocks are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What a packet is.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PacketKind {
    /// A data segment carrying `[seq, end_seq)`.
    Data,
    /// A (possibly selective) acknowledgment. `ack_seq` is the cumulative
    /// ACK; `sack` lists out-of-order ranges held by the receiver.
    Ack,
}

/// A simulated packet.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Data segment or ACK.
    pub kind: PacketKind,
    /// Final destination endpoint (used by links with
    /// [`NextHop::ToPacketDst`](crate::link::NextHop::ToPacketDst)).
    #[serde(skip, default = "zero_component")]
    pub dst: ComponentId,
    /// Total size on the wire, headers included, in bytes.
    pub wire_bytes: u32,
    /// Data: first payload byte. Ack: unused (0).
    pub seq: u64,
    /// Data: one past the last payload byte. Ack: unused (0).
    pub end_seq: u64,
    /// Ack: cumulative acknowledgment (next byte expected). Data: unused.
    pub ack_seq: u64,
    /// Ack: selective acknowledgment blocks.
    pub sack: SackBlocks,
    /// When the packet left its origin endpoint (diagnostics; senders keep
    /// their own authoritative per-segment timestamps).
    pub sent_at: SimTime,
    /// Data: true iff this is a retransmission (diagnostics/telemetry).
    pub retransmit: bool,
    /// ECN bits (RFC 3168): IP-level ECT/CE plus the TCP-level ECE/CWR
    /// echo flags, packed into one byte. Zero = not ECN-capable, the
    /// paper's testbed configuration.
    pub ecn: u8,
}

/// ECN: ECN-Capable Transport codepoint (data packets of ECN flows).
pub const ECN_ECT: u8 = 0b0001;
/// ECN: Congestion Experienced, set by an AQM in place of a drop.
pub const ECN_CE: u8 = 0b0010;
/// TCP flag: ECN-Echo, set on ACKs until the sender confirms with CWR.
pub const ECN_ECE: u8 = 0b0100;
/// TCP flag: Congestion Window Reduced, set on the first data packet after
/// an ECN-triggered reduction.
pub const ECN_CWR: u8 = 0b1000;

// Referenced only by `#[serde(default = ...)]`, which the offline serde
// stand-in (vendor/README.md) accepts but does not expand.
#[allow(dead_code)]
fn zero_component() -> ComponentId {
    ComponentId::from_raw(0)
}

/// Header overhead added to every segment: IPv4 (20) + TCP (20) +
/// options (timestamp 12) = 52 bytes. Ethernet framing is excluded, as in
/// the paper's BESS byte counting.
pub const HEADER_BYTES: u32 = 52;

/// The paper's fixed maximum segment size (payload bytes per segment).
pub const DEFAULT_MSS: u32 = 1448;

impl Packet {
    /// Build a data segment covering `[seq, end_seq)`.
    pub fn data(flow: FlowId, dst: ComponentId, seq: u64, end_seq: u64, now: SimTime) -> Packet {
        debug_assert!(end_seq > seq, "empty data segment");
        Packet {
            flow,
            kind: PacketKind::Data,
            dst,
            wire_bytes: (end_seq - seq) as u32 + HEADER_BYTES,
            seq,
            end_seq,
            ack_seq: 0,
            sack: SackBlocks::EMPTY,
            sent_at: now,
            retransmit: false,
            ecn: 0,
        }
    }

    /// Build a pure ACK.
    pub fn ack(
        flow: FlowId,
        dst: ComponentId,
        ack_seq: u64,
        sack: SackBlocks,
        now: SimTime,
    ) -> Packet {
        Packet {
            flow,
            kind: PacketKind::Ack,
            dst,
            wire_bytes: HEADER_BYTES + 12, // SACK option space, approximate
            seq: 0,
            end_seq: 0,
            ack_seq,
            sack,
            sent_at: now,
            retransmit: false,
            ecn: 0,
        }
    }

    /// Payload length (0 for ACKs).
    #[inline]
    pub fn payload_len(&self) -> u64 {
        self.end_seq - self.seq
    }

    /// True iff this is a data segment.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data)
    }

    // ----- ECN ----------------------------------------------------------

    /// Declare the packet ECN-capable (ECT codepoint).
    #[inline]
    pub fn set_ect(&mut self) {
        self.ecn |= ECN_ECT;
    }

    /// True iff the packet carries the ECT codepoint (an AQM may mark it
    /// instead of dropping it).
    #[inline]
    pub fn is_ect(&self) -> bool {
        self.ecn & ECN_ECT != 0
    }

    /// Set Congestion Experienced (an AQM's mark-instead-of-drop).
    #[inline]
    pub fn mark_ce(&mut self) {
        self.ecn |= ECN_CE;
    }

    /// True iff an AQM marked this packet CE on its path.
    #[inline]
    pub fn is_ce(&self) -> bool {
        self.ecn & ECN_CE != 0
    }

    /// Set ECN-Echo (receiver → sender, on ACKs).
    #[inline]
    pub fn set_ece(&mut self) {
        self.ecn |= ECN_ECE;
    }

    /// True iff the ACK carries ECN-Echo.
    #[inline]
    pub fn has_ece(&self) -> bool {
        self.ecn & ECN_ECE != 0
    }

    /// Set Congestion Window Reduced (sender → receiver, on data).
    #[inline]
    pub fn set_cwr(&mut self) {
        self.ecn |= ECN_CWR;
    }

    /// True iff the data packet carries CWR.
    #[inline]
    pub fn has_cwr(&self) -> bool {
        self.ecn & ECN_CWR != 0
    }

    // ----- checkpoint/restore -------------------------------------------

    /// Serialize for a checkpoint (canonical: only populated SACK blocks
    /// are written).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u32(self.flow.0);
        w.u8(match self.kind {
            PacketKind::Data => 0,
            PacketKind::Ack => 1,
        });
        w.usize(self.dst.as_usize());
        w.u32(self.wire_bytes);
        w.u64(self.seq);
        w.u64(self.end_seq);
        w.u64(self.ack_seq);
        w.u8(self.sack.len() as u8);
        for b in self.sack.as_slice() {
            w.u64(b.start);
            w.u64(b.end);
        }
        w.time(self.sent_at);
        w.bool(self.retransmit);
        w.u8(self.ecn);
    }

    /// Deserialize a packet written by [`Packet::save_state`].
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Packet, SnapError> {
        let flow = FlowId(r.u32()?);
        let kind = match r.u8()? {
            0 => PacketKind::Data,
            1 => PacketKind::Ack,
            b => return Err(SnapError::Corrupt(format!("packet kind tag {b}"))),
        };
        let dst = ComponentId::from_raw(r.usize()?);
        let wire_bytes = r.u32()?;
        let seq = r.u64()?;
        let end_seq = r.u64()?;
        let ack_seq = r.u64()?;
        let n_sack = r.u8()? as usize;
        if n_sack > MAX_SACK_BLOCKS {
            return Err(SnapError::Corrupt(format!("{n_sack} sack blocks")));
        }
        let mut sack = SackBlocks::EMPTY;
        for _ in 0..n_sack {
            let start = r.u64()?;
            let end = r.u64()?;
            sack.push(SackBlock { start, end });
        }
        let sent_at = r.time()?;
        let retransmit = r.bool()?;
        let ecn = r.u8()?;
        Ok(Packet {
            flow,
            kind,
            dst,
            wire_bytes,
            seq,
            end_seq,
            ack_seq,
            sack,
            sent_at,
            retransmit,
            ecn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid() -> ComponentId {
        ComponentId::from_raw(9)
    }

    #[test]
    fn data_packet_sizes() {
        let p = Packet::data(FlowId(1), cid(), 0, 1448, SimTime::ZERO);
        assert_eq!(p.payload_len(), 1448);
        assert_eq!(p.wire_bytes, 1500);
        assert!(p.is_data());
    }

    #[test]
    fn ack_packet_shape() {
        let p = Packet::ack(FlowId(1), cid(), 4344, SackBlocks::EMPTY, SimTime::ZERO);
        assert!(!p.is_data());
        assert_eq!(p.payload_len(), 0);
        assert_eq!(p.ack_seq, 4344);
        assert!(p.wire_bytes < 100);
    }

    #[test]
    fn sack_blocks_capacity() {
        let mut s = SackBlocks::EMPTY;
        assert!(s.is_empty());
        for i in 0..5u64 {
            s.push(SackBlock {
                start: i * 1000,
                end: i * 1000 + 500,
            });
        }
        // Only the first MAX_SACK_BLOCKS survive.
        assert_eq!(s.len(), MAX_SACK_BLOCKS);
        assert_eq!(s.as_slice()[0].start, 0);
        assert_eq!(s.as_slice()[2].start, 2000);
    }

    #[test]
    fn sack_blocks_reject_empty_ranges() {
        let mut s = SackBlocks::EMPTY;
        s.push(SackBlock { start: 5, end: 5 });
        s.push(SackBlock { start: 9, end: 4 });
        assert!(s.is_empty());
    }

    #[test]
    fn sack_block_len() {
        let b = SackBlock { start: 10, end: 25 };
        assert_eq!(b.len(), 15);
        assert!(!b.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "empty data segment")]
    fn empty_data_segment_panics() {
        let _ = Packet::data(FlowId(0), cid(), 10, 10, SimTime::ZERO);
    }

    #[test]
    fn packet_is_small() {
        // The hot path copies packets by value; keep them cache-friendly.
        assert!(std::mem::size_of::<Packet>() <= 136);
    }

    #[test]
    fn ecn_bits_are_independent() {
        let mut p = Packet::data(FlowId(0), cid(), 0, 100, SimTime::ZERO);
        assert_eq!(p.ecn, 0);
        assert!(!p.is_ect() && !p.is_ce() && !p.has_ece() && !p.has_cwr());
        p.set_ect();
        assert!(p.is_ect() && !p.is_ce());
        p.mark_ce();
        assert!(p.is_ect() && p.is_ce());
        let mut a = Packet::ack(FlowId(0), cid(), 100, SackBlocks::EMPTY, SimTime::ZERO);
        a.set_ece();
        assert!(a.has_ece() && !a.has_cwr());
        let mut d = Packet::data(FlowId(0), cid(), 0, 100, SimTime::ZERO);
        d.set_cwr();
        assert!(d.has_cwr() && !d.has_ece());
    }
}
