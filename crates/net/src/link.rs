//! Rate-limited links with drop-tail queues — the BESS-switch-port
//! equivalent.
//!
//! A [`Link`] models one transmission resource: a FIFO queue of bounded byte
//! capacity in front of a constant-rate serializer, followed by a fixed
//! propagation delay. This is exactly the abstraction the paper configures on
//! its BESS software switch (10 Gbps / 375 MB drop-tail for CoreScale,
//! 100 Mbps / 3 MB for EdgeScale).
//!
//! ## Event economy
//!
//! Each packet costs at most two events at a link: its arrival, and one
//! `SERIALIZATION_DONE` self-timer per transmitted packet (which also starts
//! service of the next queued packet). Propagation delay adds no event — the
//! onward delivery is scheduled directly at `t_tx_done + prop_delay`.
//!
//! [`Link::set_tx_burst`] coalesces further: up to `n` queued packets are
//! serialized under **one** timer, with each delivery still scheduled at its
//! own frame-completion instant, so wire spacing is exact while the timer
//! cost drops from one per packet to one per burst. The default (1) is the
//! legacy path, byte-identical to the pre-batching engine.
//!
//! ## Instrumentation
//!
//! The link keeps per-flow arrival/drop counters, aggregate byte/packet
//! counters, and a timestamped drop log (the paper's "logging packet drops at
//! the bottleneck queue"), which downstream analysis turns into loss rates
//! and Goh–Barabási burstiness scores. The log can be capped for very long
//! runs; counters are always exact.

use crate::aqm::{AqmQueue, Dequeued, DropTail, Enqueued};
use crate::msg::{Msg, TimerToken};
use crate::packet::Packet;
use crate::path::{deliver_after, hop_latency};
use ccsim_fault::{FaultStats, LinkFaultInjector};
use ccsim_sim::{
    Bandwidth, Component, ComponentId, Ctx, SimDuration, SimTime, SnapError, SnapReader, SnapWriter,
};
use ccsim_telemetry::{Counter, Histogram};
use ccsim_trace::QueueRecorder;
use std::sync::Arc;

/// Shared metric handles for a link, registered by the harness and
/// attached with [`Link::enable_metrics`]. Handles are `Arc`s straight
/// into the registry's atomics, so the hot path pays no name lookup —
/// one relaxed atomic add per count — and the primitives never touch
/// simulation state (metrics on/off cannot change an outcome).
#[derive(Clone)]
pub struct LinkMetrics {
    /// Queue occupancy in bytes, sampled at each packet arrival
    /// (`ccsim_link_queue_bytes`).
    pub queue_bytes: Arc<Histogram>,
    /// Sizes of consecutive-drop bursts, in packets
    /// (`ccsim_link_drop_burst_pkts`). A burst ends when an arrival is
    /// accepted again.
    pub drop_burst_pkts: Arc<Histogram>,
    /// Nanoseconds the serializer spent busy
    /// (`ccsim_link_busy_nanos_total`); idle time is wall sim-time minus
    /// this.
    pub busy_nanos: Arc<Counter>,
}

/// Where a link forwards packets after serialization + propagation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NextHop {
    /// Forward every packet to a fixed component (chaining links/switches).
    Fixed(ComponentId),
    /// Forward each packet to the endpoint named in [`Packet::dst`]
    /// (the last hop before a receiver).
    ToPacketDst,
}

/// Timer kind used for the serialization-complete self-event.
const SERIALIZATION_DONE: u16 = 1;

/// Timer kind for the fault-plan clock: fires at each `FaultAction`'s
/// timestamp so impairments apply at exact engine times, independent of
/// packet arrivals. The harness schedules the first tick when it attaches
/// an injector; the link re-arms itself for each subsequent action.
pub const FAULT_TICK: u16 = 2;

/// Timer kind for the AQM control-law clock (PIE's probability update).
/// Armed lazily at the first packet arrival when the discipline reports a
/// [`tick_interval`](crate::aqm::AqmQueue::tick_interval); disciplines
/// without one (drop-tail, RED, CoDel) cost zero extra events.
pub const AQM_TICK: u16 = 3;

/// Aggregate and per-flow counters for a link.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Packets that arrived at the link (enqueued + dropped).
    pub arrived_pkts: u64,
    /// Bytes that arrived at the link.
    pub arrived_bytes: u64,
    /// Packets dropped because the buffer was full.
    pub dropped_pkts: u64,
    /// Bytes dropped.
    pub dropped_bytes: u64,
    /// Packets fully serialized onto the wire.
    pub transmitted_pkts: u64,
    /// Bytes fully serialized onto the wire.
    pub transmitted_bytes: u64,
    /// Highest queue occupancy observed, in bytes (excludes the in-service
    /// packet, matching how the buffer bound is enforced).
    pub max_queue_bytes: u64,
    /// Packets CE-marked by the link's AQM in place of an early drop
    /// (always 0 for drop-tail or when ECN is off).
    pub ce_marked_pkts: u64,
    /// Per-flow arrival counts, indexed by [`FlowId`](crate::packet::FlowId).
    pub per_flow_arrived: Vec<u64>,
    /// Per-flow drop counts.
    pub per_flow_dropped: Vec<u64>,
}

impl LinkStats {
    fn grow_for(&mut self, flow_index: usize) {
        if flow_index >= self.per_flow_arrived.len() {
            self.per_flow_arrived.resize(flow_index + 1, 0);
            self.per_flow_dropped.resize(flow_index + 1, 0);
        }
    }

    /// Aggregate packet loss fraction at this link: drops / arrivals.
    pub fn loss_rate(&self) -> f64 {
        if self.arrived_pkts == 0 {
            0.0
        } else {
            self.dropped_pkts as f64 / self.arrived_pkts as f64
        }
    }

    /// Per-flow loss fraction: drops / arrivals for one flow.
    pub fn per_flow_loss_rate(&self, flow_index: usize) -> f64 {
        let arrived = self.per_flow_arrived.get(flow_index).copied().unwrap_or(0);
        if arrived == 0 {
            0.0
        } else {
            self.per_flow_dropped[flow_index] as f64 / arrived as f64
        }
    }
}

/// A rate-limited, drop-tail, fixed-propagation-delay link.
pub struct Link {
    rate: Bandwidth,
    prop_delay: SimDuration,
    /// Queue capacity in bytes (waiting packets only; the in-service packet
    /// has already left the buffer for the wire).
    buffer_bytes: u64,
    next: NextHop,
    /// The buffering policy. Drop-tail by default (byte-identical to the
    /// pre-trait hard-coded queue); swappable per link via
    /// [`Link::set_aqm`].
    aqm: Box<dyn AqmQueue>,
    /// Whether the AQM control-law timer is armed (see [`AQM_TICK`]).
    aqm_tick_armed: bool,
    in_service: Option<Packet>,
    /// Exact counters (always on).
    stats: LinkStats,
    /// Timestamps of drops, for burstiness analysis.
    drop_log: Vec<SimTime>,
    /// Maximum retained drop-log entries (counters remain exact beyond it).
    drop_log_cap: usize,
    /// Drops before this instant are not logged (warm-up exclusion).
    log_from: SimTime,
    /// Optional flight recorder (ccsim-trace): queue-depth samples and the
    /// full-run drop train, attached by the harness when tracing is on.
    recorder: Option<QueueRecorder>,
    /// Optional registry-backed metrics, attached when a run is observed.
    metrics: Option<LinkMetrics>,
    /// Length of the in-progress consecutive-drop run (metrics only).
    drop_burst: u64,
    /// Optional fault injector (ccsim-fault), attached when the scenario
    /// carries a non-empty `FaultPlan`. `None` is the fast path: no
    /// branch beyond this option check, no RNG, no timers.
    injector: Option<LinkFaultInjector>,
    /// Serialization-time memo for a train of equal-size frames —
    /// CoreScale traffic is almost entirely full-MSS data packets, so the
    /// common case is one compare instead of a u128 multiply-divide per
    /// packet. Invalidated when a fault action rewrites the rate.
    ser_memo: Option<(u32, SimDuration)>,
    /// Transmit batch size (see [`Link::set_tx_burst`]). 1 = legacy
    /// one-timer-per-packet service.
    tx_burst: u32,
    /// Burst members beyond the in-service head, retained until the
    /// burst's single `SERIALIZATION_DONE` fires so the transmit counters
    /// and the watchdog's conservation accounting stay exact. Their
    /// deliveries are already scheduled (at each frame's own completion
    /// instant). Empty whenever `tx_burst == 1`.
    burst_tail: Vec<Packet>,
}

impl Link {
    /// Create a link with `rate`, propagation delay, and drop-tail buffer of
    /// `buffer_bytes` (use `u64::MAX` for an effectively infinite buffer).
    pub fn new(rate: Bandwidth, prop_delay: SimDuration, buffer_bytes: u64, next: NextHop) -> Link {
        assert!(rate.as_bps() > 0, "link rate must be positive");
        Link {
            rate,
            prop_delay,
            buffer_bytes,
            next,
            aqm: Box::new(DropTail::new(buffer_bytes)),
            aqm_tick_armed: false,
            in_service: None,
            stats: LinkStats::default(),
            drop_log: Vec::new(),
            // 1 M entries × 8 bytes = 8 MB worst case per link. The log
            // feeds burstiness analysis, which stabilizes within ~10^5
            // intervals; the old 50 M cap (400 MB) existed only to be
            // "effectively unbounded" and could rival CoreScale's 250 MB
            // queue itself. Counters remain exact past the cap.
            drop_log_cap: 1_000_000,
            log_from: SimTime::ZERO,
            recorder: None,
            metrics: None,
            drop_burst: 0,
            injector: None,
            ser_memo: None,
            tx_burst: 1,
            burst_tail: Vec::new(),
        }
    }

    /// Configure transmit batching: serialize up to `n` queued packets
    /// under one `SERIALIZATION_DONE` timer. Each delivery is still
    /// scheduled at its own frame-completion instant, so downstream wire
    /// spacing is exactly the unbatched spacing; only the timer economy
    /// changes (and with it the engine's event count, hence the outcome
    /// digest — the knob is scenario-gated for that reason). `1` restores
    /// the legacy path. Batching is ignored while a fault injector is
    /// attached: delivery fates must be sampled at each frame's own
    /// transmission instant.
    pub fn set_tx_burst(&mut self, n: u32) {
        self.tx_burst = n.max(1);
    }

    /// The configured transmit batch size.
    pub fn tx_burst(&self) -> u32 {
        self.tx_burst
    }

    /// Cap the retained drop log (counters stay exact).
    pub fn with_drop_log_cap(mut self, cap: usize) -> Link {
        self.drop_log_cap = cap;
        self
    }

    /// Replace the buffering discipline (must be done while the queue is
    /// empty — the harness swaps AQMs at build time, before any traffic).
    ///
    /// Also invalidates the serialization-time memo: a discipline change
    /// alters effective service behavior (admission, marking, dequeue-time
    /// drops), so a memoized duration from the previous discipline's
    /// traffic must not leak across the swap.
    pub fn set_aqm(&mut self, queue: Box<dyn AqmQueue>) {
        assert_eq!(
            self.aqm.queued_pkts(),
            0,
            "AQM discipline swapped with packets still queued"
        );
        self.buffer_bytes = queue.buffer_bytes();
        self.aqm = queue;
        self.aqm_tick_armed = false;
        self.ser_memo = None;
    }

    /// The active AQM discipline.
    pub fn aqm_kind(&self) -> crate::aqm::AqmKind {
        self.aqm.kind()
    }

    /// The serialization-time memo's current key, if populated
    /// (diagnostics; lets tests pin the memo's invalidation paths).
    pub fn ser_memo_bytes(&self) -> Option<u32> {
        self.ser_memo.map(|(bytes, _)| bytes)
    }

    /// Suppress drop-log entries before `t` (warm-up exclusion). Counters
    /// still include them.
    pub fn set_log_from(&mut self, t: SimTime) {
        self.log_from = t;
    }

    /// Attach a flight recorder; subsequent arrivals sample the queue
    /// depth and every drop is recorded with its backlog.
    pub fn enable_trace(&mut self, recorder: QueueRecorder) {
        self.recorder = Some(recorder);
    }

    /// Detach and return the flight recorder (the harness drains it into
    /// the run trace after the simulation ends).
    pub fn take_trace(&mut self) -> Option<QueueRecorder> {
        self.recorder.take()
    }

    /// Attach registry-backed metrics; subsequent arrivals sample queue
    /// occupancy, serialization accumulates busy time, and drop bursts
    /// are sized as they end.
    pub fn enable_metrics(&mut self, metrics: LinkMetrics) {
        self.metrics = Some(metrics);
    }

    /// Flush metric state that only materializes at an edge — currently
    /// the final in-progress drop burst. The harness calls this once
    /// after the simulation ends, before exporting the registry.
    pub fn finish_metrics(&mut self) {
        if self.drop_burst > 0 {
            if let Some(m) = &self.metrics {
                m.drop_burst_pkts.record(self.drop_burst);
            }
            self.drop_burst = 0;
        }
    }

    /// Attach a fault injector. The caller must also schedule the first
    /// [`FAULT_TICK`] timer at [`LinkFaultInjector::next_action_at`] —
    /// the link re-arms itself from then on.
    pub fn enable_faults(&mut self, injector: LinkFaultInjector) {
        self.injector = Some(injector);
    }

    /// Injector decision counters, when faults are attached.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&LinkFaultInjector> {
        self.injector.as_ref()
    }

    /// The configured rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// The configured one-way propagation delay.
    pub fn prop_delay(&self) -> SimDuration {
        self.prop_delay
    }

    /// The configured buffer capacity in bytes.
    pub fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    /// Counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Timestamps of logged drops (see [`Link::set_log_from`]).
    pub fn drop_log(&self) -> &[SimTime] {
        &self.drop_log
    }

    /// Approximate heap footprint of this link: the struct, the AQM
    /// discipline's packet storage, and the drop log. Feeds the
    /// profiler's `net/link_queues` memory account; the attached queue
    /// recorder (if tracing) is accounted under `trace/rings` via
    /// [`Link::trace_memory_bytes`].
    pub fn memory_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
            + self.aqm.memory_bytes()
            + (self.drop_log.capacity() * std::mem::size_of::<SimTime>()) as u64
            + (self.burst_tail.capacity() * std::mem::size_of::<Packet>()) as u64
    }

    /// Heap bytes held by the attached queue recorder, 0 when tracing is
    /// off.
    pub fn trace_memory_bytes(&self) -> u64 {
        self.recorder.as_ref().map_or(0, |rec| rec.memory_bytes())
    }

    /// Current backlog in bytes (waiting packets, excluding in-service).
    pub fn backlog_bytes(&self) -> u64 {
        self.aqm.queued_bytes()
    }

    /// Number of packets waiting in the queue (excluding in-service).
    pub fn queued_pkts(&self) -> u64 {
        self.aqm.queued_pkts()
    }

    /// Packets currently being serialized (the in-service head plus any
    /// burst tail) — so the watchdog's conservation check can account for
    /// every packet the link has accepted but not yet transmitted.
    pub fn in_service_pkts(&self) -> u64 {
        u64::from(self.in_service.is_some()) + self.burst_tail.len() as u64
    }

    /// Reset counters and the drop log (typically at the end of warm-up).
    pub fn reset_stats(&mut self) {
        let flows = self.stats.per_flow_arrived.len();
        self.stats = LinkStats::default();
        self.stats.per_flow_arrived.resize(flows, 0);
        self.stats.per_flow_dropped.resize(flows, 0);
        self.drop_log.clear();
    }

    /// An accepted arrival ends any in-progress drop burst.
    #[inline]
    fn end_drop_burst(&mut self) {
        if self.drop_burst > 0 {
            if let Some(m) = &self.metrics {
                m.drop_burst_pkts.record(self.drop_burst);
            }
            self.drop_burst = 0;
        }
    }

    fn forward_to(&self, p: &Packet) -> ComponentId {
        match self.next {
            NextHop::Fixed(id) => id,
            NextHop::ToPacketDst => p.dst,
        }
    }

    fn ser_time(&mut self, wire_bytes: u32) -> SimDuration {
        match self.ser_memo {
            Some((bytes, d)) if bytes == wire_bytes => d,
            _ => {
                let d = self.rate.serialization_time(wire_bytes as u64);
                self.ser_memo = Some((wire_bytes, d));
                d
            }
        }
    }

    fn start_service(&mut self, p: Packet, ctx: &mut Ctx<'_, Msg>) {
        let ser = self.ser_time(p.wire_bytes);
        if let Some(m) = &self.metrics {
            m.busy_nanos.add(ser.as_nanos());
        }
        self.in_service = Some(p);
        ctx.schedule_self(ser, Msg::Timer(TimerToken::pack(SERIALIZATION_DONE, 0)));
    }

    /// Whether the batched transmit path is active (see
    /// [`Link::set_tx_burst`]): never with an injector, whose delivery
    /// fates must be drawn at each frame's own transmission instant.
    fn burst_mode(&self) -> bool {
        self.tx_burst > 1 && self.injector.is_none()
    }

    /// Start a batched service round: take the optional fresh arrival,
    /// then dequeue until the burst is full or the queue is empty. Each
    /// member's delivery is scheduled eagerly at its own completion
    /// instant (`Σ ser ≤ member + prop`), and one `SERIALIZATION_DONE`
    /// is armed at the burst's end to retire the counters and pull the
    /// next burst.
    fn begin_burst(&mut self, now: SimTime, mut first: Option<Packet>, ctx: &mut Ctx<'_, Msg>) {
        debug_assert!(self.in_service.is_none() && self.burst_tail.is_empty());
        let mut offset = SimDuration::ZERO;
        let mut taken = 0u32;
        while taken < self.tx_burst {
            let next = match first.take() {
                Some(p) => Some(p),
                None => self.pull_queue(now),
            };
            let Some(p) = next else { break };
            let ser = self.ser_time(p.wire_bytes);
            if let Some(m) = &self.metrics {
                m.busy_nanos.add(ser.as_nanos());
            }
            offset += ser;
            let dst = self.forward_to(&p);
            deliver_after(
                ctx,
                offset + hop_latency(self.prop_delay, SimDuration::ZERO),
                dst,
                p,
            );
            if taken == 0 {
                self.in_service = Some(p);
            } else {
                self.burst_tail.push(p);
            }
            taken += 1;
        }
        if taken > 0 {
            ctx.schedule_self(offset, Msg::Timer(TimerToken::pack(SERIALIZATION_DONE, 0)));
        }
    }

    /// Dequeue the next serviceable packet, accounting dequeue-time drops
    /// and CE marks (CoDel may drop, PIE may mark, at dequeue).
    fn pull_queue(&mut self, now: SimTime) -> Option<Packet> {
        loop {
            match self.aqm.dequeue(now) {
                Dequeued::Deliver(next) => return Some(next),
                Dequeued::Marked(next) => {
                    self.stats.ce_marked_pkts += 1;
                    if let Some(rec) = &mut self.recorder {
                        rec.on_ecn_mark(now, next.flow.0, self.aqm.queued_bytes());
                    }
                    return Some(next);
                }
                Dequeued::Dropped(dropped) => self.count_drop(now, &dropped),
                Dequeued::Empty => return None,
            }
        }
    }

    /// Account one dropped packet: counters, metrics burst, drop log, and
    /// flight recorder. Queue-overflow, AQM early drops, fault drops, and
    /// CoDel dequeue-time drops all flow through here so loss-rate
    /// analysis sees total loss regardless of cause.
    fn count_drop(&mut self, now: SimTime, p: &Packet) {
        self.stats.dropped_pkts += 1;
        self.stats.dropped_bytes += p.wire_bytes as u64;
        self.stats.per_flow_dropped[p.flow.index()] += 1;
        if self.metrics.is_some() {
            self.drop_burst += 1;
        }
        if now >= self.log_from && self.drop_log.len() < self.drop_log_cap {
            self.drop_log.push(now);
        }
        if let Some(rec) = &mut self.recorder {
            rec.on_drop(now, p.flow.0, self.aqm.queued_bytes());
        }
    }

    /// Arm the AQM control-law timer if the discipline wants one and it is
    /// not already running (lazy: first arrival only).
    fn maybe_arm_aqm_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.aqm_tick_armed {
            if let Some(interval) = self.aqm.tick_interval() {
                self.aqm_tick_armed = true;
                ctx.schedule_self(interval, Msg::Timer(TimerToken::pack(AQM_TICK, 0)));
            }
        }
    }

    fn on_packet(&mut self, now: SimTime, p: Packet, ctx: &mut Ctx<'_, Msg>) {
        let fi = p.flow.index();
        self.stats.grow_for(fi);
        self.stats.arrived_pkts += 1;
        self.stats.arrived_bytes += p.wire_bytes as u64;
        self.stats.per_flow_arrived[fi] += 1;
        if let Some(rec) = &mut self.recorder {
            rec.on_arrival(now, self.aqm.queued_bytes(), self.aqm.queued_pkts());
        }
        if let Some(m) = &self.metrics {
            m.queue_bytes.record(self.aqm.queued_bytes());
        }
        if let Some(inj) = &mut self.injector {
            if inj.arrival_drop(now).is_some() {
                // Fault drops (blackout / random loss): the injector's own
                // stats keep the breakdown by cause.
                self.count_drop(now, &p);
                return;
            }
        }
        self.maybe_arm_aqm_tick(ctx);

        if self.in_service.is_none() {
            debug_assert!(self.aqm.queued_pkts() == 0);
            self.end_drop_burst();
            if self.burst_mode() {
                self.begin_burst(now, Some(p), ctx);
            } else {
                self.start_service(p, ctx);
            }
            return;
        }
        match self.aqm.enqueue(now, p) {
            Enqueued::Dropped(p) => self.count_drop(now, &p),
            Enqueued::Marked => {
                self.end_drop_burst();
                self.stats.ce_marked_pkts += 1;
                if let Some(rec) = &mut self.recorder {
                    rec.on_ecn_mark(now, p.flow.0, self.aqm.queued_bytes());
                }
                self.stats.max_queue_bytes =
                    self.stats.max_queue_bytes.max(self.aqm.queued_bytes());
            }
            Enqueued::Queued => {
                self.end_drop_burst();
                self.stats.max_queue_bytes =
                    self.stats.max_queue_bytes.max(self.aqm.queued_bytes());
            }
        }
    }

    fn on_serialization_done(&mut self, now: SimTime, ctx: &mut Ctx<'_, Msg>) {
        let p = self
            .in_service
            .take()
            .expect("serialization-done with no packet in service");
        if self.burst_mode() {
            // Batched service: every member's delivery was scheduled at
            // its own completion instant when the burst began; this one
            // timer retires the whole burst's transmit counters and pulls
            // the next burst.
            self.stats.transmitted_pkts += 1;
            self.stats.transmitted_bytes += p.wire_bytes as u64;
            for tail in self.burst_tail.drain(..) {
                self.stats.transmitted_pkts += 1;
                self.stats.transmitted_bytes += tail.wire_bytes as u64;
            }
            self.begin_burst(now, None, ctx);
            return;
        }
        self.stats.transmitted_pkts += 1;
        self.stats.transmitted_bytes += p.wire_bytes as u64;
        let dst = self.forward_to(&p);
        if let Some(inj) = &mut self.injector {
            // Delivery-side impairments: extra one-way delay (base-RTT
            // step, reorder hold-back) and duplication. A held-back
            // packet is overtaken by later deliveries — reordering
            // without any queue manipulation.
            let fate = inj.delivery_fate();
            let latency = hop_latency(self.prop_delay, fate.extra_delay);
            deliver_after(ctx, latency, dst, p);
            if fate.duplicate {
                deliver_after(ctx, latency, dst, p);
            }
        } else {
            deliver_after(ctx, hop_latency(self.prop_delay, SimDuration::ZERO), dst, p);
        }
        // Pull the next packet to serialize (dequeue-time drops and marks
        // are accounted inside `pull_queue`).
        if let Some(next) = self.pull_queue(now) {
            self.start_service(next, ctx);
        }
    }

    /// Serialize this link's mutable state for a checkpoint. Topology
    /// configuration (propagation delay, buffer size, next hop, AQM
    /// discipline choice, drop-log cap) is rebuilt from the scenario;
    /// everything here is what traffic and fault actions have changed:
    /// the current rate (fault-mutable), queue contents, in-service
    /// packet, counters, drop log, and the delegated AQM / injector /
    /// recorder state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.rate.as_bps());
        w.opt(self.ser_memo, |w, (bytes, d)| {
            w.u32(bytes);
            w.duration(d);
        });
        w.bool(self.aqm_tick_armed);
        w.opt(self.in_service.as_ref(), |w, p| p.save_state(w));
        w.u64(self.stats.arrived_pkts);
        w.u64(self.stats.arrived_bytes);
        w.u64(self.stats.dropped_pkts);
        w.u64(self.stats.dropped_bytes);
        w.u64(self.stats.transmitted_pkts);
        w.u64(self.stats.transmitted_bytes);
        w.u64(self.stats.max_queue_bytes);
        w.u64(self.stats.ce_marked_pkts);
        w.seq(&self.stats.per_flow_arrived, |w, n| w.u64(*n));
        w.seq(&self.stats.per_flow_dropped, |w, n| w.u64(*n));
        w.seq(&self.drop_log, |w, t| w.time(*t));
        w.time(self.log_from);
        w.u64(self.drop_burst);
        w.seq(&self.burst_tail, |w, p| p.save_state(w));
        self.aqm.save_state(w);
        w.opt(self.injector.as_ref(), |w, inj| inj.save_state(w));
        w.opt(self.recorder.as_ref(), |w, rec| rec.save_state(w));
    }

    /// Overlay checkpointed state onto a link freshly built from the same
    /// scenario (same AQM discipline, fault plan, and trace attachment).
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rate = Bandwidth::from_bps(r.u64()?);
        self.ser_memo = r.opt(|r| {
            let bytes = r.u32()?;
            let d = r.duration()?;
            Ok((bytes, d))
        })?;
        self.aqm_tick_armed = r.bool()?;
        self.in_service = r.opt(Packet::load_state)?;
        self.stats.arrived_pkts = r.u64()?;
        self.stats.arrived_bytes = r.u64()?;
        self.stats.dropped_pkts = r.u64()?;
        self.stats.dropped_bytes = r.u64()?;
        self.stats.transmitted_pkts = r.u64()?;
        self.stats.transmitted_bytes = r.u64()?;
        self.stats.max_queue_bytes = r.u64()?;
        self.stats.ce_marked_pkts = r.u64()?;
        self.stats.per_flow_arrived = r.seq(|r| r.u64())?;
        self.stats.per_flow_dropped = r.seq(|r| r.u64())?;
        self.drop_log = r.seq(|r| r.time())?;
        self.log_from = r.time()?;
        self.drop_burst = r.u64()?;
        self.burst_tail = r.seq(Packet::load_state)?;
        self.aqm.load_state(r)?;
        let saved_injector = r.opt(|_| Ok(()))?;
        match (&mut self.injector, saved_injector) {
            (Some(inj), Some(())) => {
                // The opt closure above consumed only the presence tag;
                // re-enter the injector payload in place.
                inj.load_state(r)?;
            }
            (None, None) => {}
            (have, saved) => {
                return Err(SnapError::Corrupt(format!(
                    "fault injector presence mismatch: built {}, snapshot {}",
                    have.is_some(),
                    saved.is_some()
                )));
            }
        }
        let saved_recorder = r.opt(|_| Ok(()))?;
        match (&mut self.recorder, saved_recorder) {
            (Some(rec), Some(())) => rec.load_state(r)?,
            (None, None) => {}
            (have, saved) => {
                return Err(SnapError::Corrupt(format!(
                    "queue recorder presence mismatch: built {}, snapshot {}",
                    have.is_some(),
                    saved.is_some()
                )));
            }
        }
        Ok(())
    }

    fn on_fault_tick(&mut self, now: SimTime, ctx: &mut Ctx<'_, Msg>) {
        let Some(inj) = &mut self.injector else {
            return;
        };
        let changes = inj.advance_to(now);
        if let Some(rate) = changes.new_rate {
            // Takes effect at the next serialization start; the frame on
            // the wire finishes at its old rate, as on real hardware.
            self.rate = rate;
            self.ser_memo = None;
            // Delay-estimating disciplines (PIE) re-anchor on the new
            // drain rate.
            self.aqm.on_rate_change(rate);
        }
        if let Some(at) = inj.next_action_at() {
            let self_id = ctx.self_id();
            ctx.schedule_at(at, self_id, Msg::Timer(TimerToken::pack(FAULT_TICK, 0)));
        }
    }
}

impl Component<Msg> for Link {
    fn on_event(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Packet(p) => self.on_packet(now, p, ctx),
            Msg::Timer(t) => match t.kind() {
                FAULT_TICK => self.on_fault_tick(now, ctx),
                AQM_TICK => {
                    // Re-arm only while the discipline still wants a tick
                    // (a build-time AQM swap may leave one parked event)
                    // and has work to do — a quiescent discipline on an
                    // idle link would otherwise keep the simulation alive
                    // forever. The next arrival re-arms lazily.
                    if let Some(interval) = self.aqm.tick_interval() {
                        self.aqm.on_tick(now);
                        if self.aqm.tick_needed() || self.in_service.is_some() {
                            ctx.schedule_self(interval, Msg::Timer(TimerToken::pack(AQM_TICK, 0)));
                        } else {
                            self.aqm_tick_armed = false;
                        }
                    } else {
                        self.aqm_tick_armed = false;
                    }
                }
                kind => {
                    debug_assert_eq!(kind, SERIALIZATION_DONE);
                    self.on_serialization_done(now, ctx);
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use ccsim_sim::Simulator;

    /// Records every packet it receives with the arrival time.
    pub struct Sink {
        pub received: Vec<(SimTime, Packet)>,
    }

    impl Component<Msg> for Sink {
        fn on_event(&mut self, now: SimTime, msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Packet(p) = msg {
                self.received.push((now, p));
            }
        }
    }

    fn pkt(flow: u32, dst: ComponentId, bytes: u32) -> Packet {
        let mut p = Packet::data(FlowId(flow), dst, 0, bytes as u64, SimTime::ZERO);
        p.wire_bytes = bytes; // test uses raw wire size without header math
        p
    }

    #[test]
    fn single_packet_latency_is_serialization_plus_propagation() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        // 100 Mbps, 5 ms propagation.
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(5),
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(0, sink, 1500)));
        sim.run();
        let rx = &sim.component::<Sink>(sink).received;
        assert_eq!(rx.len(), 1);
        // 1500B @ 100Mbps = 120 us; + 5 ms.
        assert_eq!(rx[0].0, SimTime::from_micros(5_120));
    }

    #[test]
    fn back_to_back_packets_are_spaced_by_serialization_time() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        for _ in 0..3 {
            sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(0, sink, 1500)));
        }
        sim.run();
        let rx = &sim.component::<Sink>(sink).received;
        assert_eq!(rx.len(), 3);
        assert_eq!(rx[0].0, SimTime::from_micros(120));
        assert_eq!(rx[1].0, SimTime::from_micros(240));
        assert_eq!(rx[2].0, SimTime::from_micros(360));
    }

    #[test]
    fn drop_tail_drops_arrivals_beyond_buffer() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        // Buffer fits exactly two waiting 1500 B packets.
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            3000,
            NextHop::ToPacketDst,
        ));
        // Five simultaneous arrivals: 1 in service + 2 queued + 2 dropped.
        for i in 0..5 {
            sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(i, sink, 1500)));
        }
        sim.run();
        assert_eq!(sim.component::<Sink>(sink).received.len(), 3);
        let stats = sim.component::<Link>(link).stats();
        assert_eq!(stats.arrived_pkts, 5);
        assert_eq!(stats.dropped_pkts, 2);
        assert_eq!(stats.transmitted_pkts, 3);
        assert_eq!(stats.max_queue_bytes, 3000);
        // Drop-tail drops the *late* arrivals (flows 3, 4).
        assert_eq!(stats.per_flow_dropped[3], 1);
        assert_eq!(stats.per_flow_dropped[4], 1);
        assert_eq!(stats.per_flow_dropped[0], 0);
        assert_eq!(sim.component::<Link>(link).drop_log().len(), 2);
    }

    #[test]
    fn loss_rate_computation() {
        let s = LinkStats {
            arrived_pkts: 200,
            dropped_pkts: 10,
            ..LinkStats::default()
        };
        assert!((s.loss_rate() - 0.05).abs() < 1e-12);
        assert_eq!(LinkStats::default().loss_rate(), 0.0);
    }

    #[test]
    fn per_flow_loss_rate() {
        let mut s = LinkStats::default();
        s.grow_for(1);
        s.per_flow_arrived[1] = 100;
        s.per_flow_dropped[1] = 25;
        assert!((s.per_flow_loss_rate(1) - 0.25).abs() < 1e-12);
        assert_eq!(s.per_flow_loss_rate(0), 0.0);
        assert_eq!(s.per_flow_loss_rate(99), 0.0); // out of range = no data
    }

    #[test]
    fn fixed_next_hop_chains_links() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let second = sim.add_component(Link::new(
            Bandwidth::from_gbps(10),
            SimDuration::from_millis(1),
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        let first = sim.add_component(Link::new(
            Bandwidth::from_gbps(10),
            SimDuration::from_millis(1),
            u64::MAX,
            NextHop::Fixed(second),
        ));
        sim.schedule(SimTime::ZERO, first, Msg::Packet(pkt(0, sink, 1250)));
        sim.run();
        let rx = &sim.component::<Sink>(sink).received;
        assert_eq!(rx.len(), 1);
        // Two hops: 2 * (1 us serialization + 1 ms propagation).
        assert_eq!(rx[0].0, SimTime::from_micros(2_002));
    }

    #[test]
    fn reset_stats_clears_counts_but_keeps_flow_table_size() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(10),
            SimDuration::ZERO,
            0, // everything beyond the in-service packet drops
            NextHop::ToPacketDst,
        ));
        for _ in 0..4 {
            sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(2, sink, 1000)));
        }
        sim.run();
        let l = sim.component_mut::<Link>(link);
        assert_eq!(l.stats().dropped_pkts, 3);
        l.reset_stats();
        assert_eq!(l.stats().dropped_pkts, 0);
        assert_eq!(l.stats().per_flow_arrived.len(), 3);
        assert!(l.drop_log().is_empty());
    }

    #[test]
    fn drop_log_cap_limits_log_not_counters() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(
            Link::new(
                Bandwidth::from_mbps(10),
                SimDuration::ZERO,
                0,
                NextHop::ToPacketDst,
            )
            .with_drop_log_cap(2),
        );
        for _ in 0..10 {
            sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(0, sink, 1000)));
        }
        sim.run();
        let l = sim.component::<Link>(link);
        assert_eq!(l.drop_log().len(), 2);
        assert_eq!(l.stats().dropped_pkts, 9);
    }

    #[test]
    fn metrics_capture_occupancy_bursts_and_busy_time() {
        use ccsim_telemetry::Registry;
        let registry = Registry::new();
        let metrics = LinkMetrics {
            queue_bytes: registry.histogram("ccsim_link_queue_bytes", "occupancy"),
            drop_burst_pkts: registry.histogram("ccsim_link_drop_burst_pkts", "bursts"),
            busy_nanos: registry.counter("ccsim_link_busy_nanos_total", "busy"),
        };
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        // Buffer fits exactly two waiting 1500 B packets.
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            3000,
            NextHop::ToPacketDst,
        ));
        sim.component_mut::<Link>(link)
            .enable_metrics(metrics.clone());
        // 1 in service + 2 queued + 2 dropped (one burst of 2).
        for i in 0..5 {
            sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(i, sink, 1500)));
        }
        sim.run();
        sim.component_mut::<Link>(link).finish_metrics();
        // Occupancy sampled at all 5 arrivals.
        assert_eq!(metrics.queue_bytes.count(), 5);
        // One burst of 2 drops, flushed by finish_metrics.
        assert_eq!(metrics.drop_burst_pkts.count(), 1);
        assert_eq!(metrics.drop_burst_pkts.sum(), 2);
        // 3 packets × 1500 B @ 100 Mbps = 3 × 120 µs busy.
        assert_eq!(metrics.busy_nanos.get(), 360_000);
    }

    #[test]
    fn metrics_do_not_change_link_behavior() {
        let run = |with_metrics: bool| {
            let registry = ccsim_telemetry::Registry::new();
            let mut sim = Simulator::new(7);
            let sink = sim.add_component(Sink { received: vec![] });
            let link = sim.add_component(Link::new(
                Bandwidth::from_mbps(10),
                SimDuration::from_millis(1),
                3000,
                NextHop::ToPacketDst,
            ));
            if with_metrics {
                sim.component_mut::<Link>(link).enable_metrics(LinkMetrics {
                    queue_bytes: registry.histogram("q", "q"),
                    drop_burst_pkts: registry.histogram("b", "b"),
                    busy_nanos: registry.counter("n", "n"),
                });
            }
            for i in 0..8 {
                sim.schedule(
                    SimTime::from_micros(i * 50),
                    link,
                    Msg::Packet(pkt(0, sink, 1500)),
                );
            }
            sim.run();
            let l = sim.component::<Link>(link);
            (
                l.stats().clone().transmitted_pkts,
                l.stats().dropped_pkts,
                sim.component::<Sink>(sink)
                    .received
                    .iter()
                    .map(|(t, _)| *t)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    /// Schedule the first fault tick the way the harness does.
    fn arm_faults(sim: &mut Simulator<Msg>, link: ComponentId, inj: LinkFaultInjector) {
        let first = inj.next_action_at();
        sim.component_mut::<Link>(link).enable_faults(inj);
        if let Some(at) = first {
            sim.schedule(at, link, Msg::Timer(TimerToken::pack(FAULT_TICK, 0)));
        }
    }

    #[test]
    fn blackout_drops_arrivals_then_restores() {
        use ccsim_fault::FaultPlan;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        let plan = FaultPlan::none().blackout(SimTime::from_secs(1), SimDuration::from_secs(2));
        arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, 9));
        // One packet before, two during, one after the [1s, 3s) outage.
        for t_ms in [500, 1_500, 2_500, 3_500] {
            sim.schedule(
                SimTime::from_millis(t_ms),
                link,
                Msg::Packet(pkt(0, sink, 1500)),
            );
        }
        sim.run();
        assert_eq!(sim.component::<Sink>(sink).received.len(), 2);
        let l = sim.component::<Link>(link);
        assert_eq!(l.stats().dropped_pkts, 2);
        assert_eq!(l.fault_stats().unwrap().blackout_dropped, 2);
        assert_eq!(
            l.drop_log(),
            &[SimTime::from_millis(1_500), SimTime::from_millis(2_500)]
        );
    }

    #[test]
    fn bandwidth_step_changes_serialization_spacing() {
        use ccsim_fault::FaultPlan;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        // Halve the rate at t=1s: 1500 B goes from 120 µs to 240 µs.
        let plan = FaultPlan::none().set_bandwidth(SimTime::from_secs(1), Bandwidth::from_mbps(50));
        arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, 9));
        sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(0, sink, 1500)));
        sim.schedule(SimTime::from_secs(2), link, Msg::Packet(pkt(0, sink, 1500)));
        sim.run();
        let rx = &sim.component::<Sink>(sink).received;
        assert_eq!(rx[0].0, SimTime::from_micros(120));
        assert_eq!(
            rx[1].0,
            SimTime::from_secs(2) + SimDuration::from_micros(240)
        );
    }

    #[test]
    fn extra_delay_step_shifts_deliveries() {
        use ccsim_fault::FaultPlan;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(5),
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        let plan =
            FaultPlan::none().set_extra_delay(SimTime::from_secs(1), SimDuration::from_millis(20));
        arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, 9));
        sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(0, sink, 1500)));
        sim.schedule(SimTime::from_secs(2), link, Msg::Packet(pkt(0, sink, 1500)));
        sim.run();
        let rx = &sim.component::<Sink>(sink).received;
        // Before: 120 µs serialization + 5 ms. After: + 20 ms extra.
        assert_eq!(rx[0].0, SimTime::from_micros(5_120));
        assert_eq!(
            rx[1].0,
            SimTime::from_secs(2) + SimDuration::from_micros(25_120)
        );
    }

    #[test]
    fn certain_reorder_lets_later_packets_overtake() {
        use ccsim_fault::FaultPlan;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(1),
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        // Hold back only the first packet (reorder window covers t<1ms).
        let plan = FaultPlan::none()
            .reorder(SimTime::ZERO, 1.0, SimDuration::from_millis(10))
            .reorder(SimTime::from_millis(1), 0.0, SimDuration::ZERO);
        arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, 9));
        let mut first = pkt(0, sink, 1500);
        first.seq = 1;
        let mut second = pkt(0, sink, 1500);
        second.seq = 2;
        sim.schedule(SimTime::ZERO, link, Msg::Packet(first));
        sim.schedule(SimTime::from_millis(2), link, Msg::Packet(second));
        sim.run();
        let rx = &sim.component::<Sink>(sink).received;
        assert_eq!(rx.len(), 2);
        // seq 2 (sent later) arrives before the held-back seq 1.
        assert_eq!(rx[0].1.seq, 2);
        assert_eq!(rx[1].1.seq, 1);
        assert_eq!(
            sim.component::<Link>(link).fault_stats().unwrap().reordered,
            1
        );
    }

    #[test]
    fn certain_duplication_delivers_two_copies() {
        use ccsim_fault::FaultPlan;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        let plan = FaultPlan::none().duplicate(SimTime::ZERO, 1.0);
        arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, 9));
        sim.schedule(SimTime::from_secs(1), link, Msg::Packet(pkt(0, sink, 1500)));
        sim.run();
        let l = sim.component::<Link>(link);
        assert_eq!(sim.component::<Sink>(sink).received.len(), 2);
        // Conservation holds: the duplicate is minted at delivery, not
        // through the queue.
        assert_eq!(l.stats().transmitted_pkts, 1);
        assert_eq!(l.fault_stats().unwrap().duplicated, 1);
    }

    #[test]
    fn iid_loss_drops_close_to_rate_at_the_link() {
        use ccsim_fault::FaultPlan;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_gbps(10),
            SimDuration::ZERO,
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        let plan = FaultPlan::none().iid_loss(SimTime::ZERO, 0.1);
        arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, 77));
        for i in 0..5_000u64 {
            sim.schedule(
                SimTime::from_micros(10 + i * 10),
                link,
                Msg::Packet(pkt(0, sink, 1500)),
            );
        }
        sim.run();
        let l = sim.component::<Link>(link);
        let dropped = l.stats().dropped_pkts;
        assert!((350..650).contains(&dropped), "dropped {dropped} at p=0.1");
        assert_eq!(l.fault_stats().unwrap().loss_dropped, dropped);
        assert_eq!(l.stats().transmitted_pkts + dropped, l.stats().arrived_pkts);
    }

    #[test]
    fn faulted_run_is_seed_deterministic_at_the_link() {
        use ccsim_fault::FaultPlan;
        let run = |seed: u64| {
            let mut sim = Simulator::new(0);
            let sink = sim.add_component(Sink { received: vec![] });
            let link = sim.add_component(Link::new(
                Bandwidth::from_mbps(100),
                SimDuration::from_millis(1),
                4500,
                NextHop::ToPacketDst,
            ));
            let plan = FaultPlan::none()
                .iid_loss(SimTime::ZERO, 0.05)
                .blackout(SimTime::from_millis(50), SimDuration::from_millis(10))
                .duplicate(SimTime::from_millis(70), 0.1);
            arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, seed));
            for i in 0..2_000u64 {
                sim.schedule(
                    SimTime::from_micros(i * 50),
                    link,
                    Msg::Packet(pkt(0, sink, 1500)),
                );
            }
            sim.run();
            sim.component::<Sink>(sink)
                .received
                .iter()
                .map(|(t, p)| (*t, p.seq))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn set_aqm_invalidates_ser_memo_and_resyncs_buffer() {
        use crate::aqm::AqmKind;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            3000,
            NextHop::ToPacketDst,
        ));
        sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(0, sink, 1500)));
        sim.run();
        let l = sim.component_mut::<Link>(link);
        assert_eq!(l.ser_memo_bytes(), Some(1500));
        l.set_aqm(AqmKind::Codel.build(64_000, Bandwidth::from_mbps(100), false, 1));
        assert_eq!(l.ser_memo_bytes(), None);
        assert_eq!(l.aqm_kind(), AqmKind::Codel);
        assert_eq!(l.buffer_bytes(), 64_000);
    }

    #[test]
    fn pie_link_quiesces_after_draining_so_run_to_empty_terminates() {
        use crate::aqm::AqmKind;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let mut l = Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            64_000,
            NextHop::ToPacketDst,
        );
        l.set_aqm(AqmKind::Pie.build(64_000, Bandwidth::from_mbps(100), false, 5));
        let link = sim.add_component(l);
        // A burst deep enough to raise PIE's probability above zero, so
        // quiescence requires the post-drain decay to actually terminate.
        for i in 0..200 {
            sim.schedule(
                SimTime::from_micros(i * 10),
                link,
                Msg::Packet(pkt(0, sink, 1500)),
            );
        }
        // Runs to a genuinely empty event queue: with the control-law
        // timer re-arming unconditionally this would never return.
        sim.run();
        let l = sim.component::<Link>(link);
        assert!(l.stats().transmitted_pkts > 0);
        assert_eq!(l.aqm.queued_pkts(), 0);
        assert!(!l.aqm.tick_needed(), "PIE still ticking after drain");
    }

    #[test]
    fn fault_rate_change_invalidates_ser_memo() {
        use ccsim_fault::FaultPlan;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        let plan = FaultPlan::none().set_bandwidth(SimTime::from_secs(1), Bandwidth::from_mbps(50));
        arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, 9));
        // One packet long before the rate change populates the memo; no
        // traffic afterwards, so a stale memo would survive to the end.
        sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(0, sink, 1500)));
        sim.run();
        assert_eq!(sim.component::<Link>(link).ser_memo_bytes(), None);
    }

    #[test]
    fn red_link_marks_ect_packets_instead_of_dropping_early() {
        use crate::aqm::AqmKind;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(10),
            SimDuration::ZERO,
            60_000,
            NextHop::ToPacketDst,
        ));
        sim.component_mut::<Link>(link).set_aqm(AqmKind::Red.build(
            60_000,
            Bandwidth::from_mbps(10),
            true,
            7,
        ));
        // Arrivals far faster than the 1.2 ms/pkt drain build a standing
        // queue; the long train lets RED's slow EWMA (w = 1/512) converge
        // past the marking thresholds.
        for i in 0..2000u64 {
            let mut p = pkt(0, sink, 1500);
            p.seq = i;
            p.set_ect();
            sim.schedule(SimTime::from_micros(i * 100), link, Msg::Packet(p));
        }
        sim.run();
        let l = sim.component::<Link>(link);
        let stats = l.stats().clone();
        assert!(stats.ce_marked_pkts > 0, "RED never marked: {stats:?}");
        // Marks replace early drops, not buffer-overflow drops; everything
        // admitted is eventually transmitted.
        assert_eq!(
            stats.transmitted_pkts + stats.dropped_pkts,
            stats.arrived_pkts
        );
        let ce_delivered = sim
            .component::<Sink>(sink)
            .received
            .iter()
            .filter(|(_, p)| p.is_ce())
            .count() as u64;
        assert_eq!(ce_delivered, stats.ce_marked_pkts);
    }

    #[test]
    fn red_link_without_ecn_early_drops_instead_of_marking() {
        use crate::aqm::AqmKind;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(10),
            SimDuration::ZERO,
            60_000,
            NextHop::ToPacketDst,
        ));
        sim.component_mut::<Link>(link).set_aqm(AqmKind::Red.build(
            60_000,
            Bandwidth::from_mbps(10),
            false,
            7,
        ));
        for i in 0..200u64 {
            let mut p = pkt(0, sink, 1500);
            p.seq = i;
            p.set_ect();
            sim.schedule(SimTime::from_micros(i * 100), link, Msg::Packet(p));
        }
        sim.run();
        let stats = sim.component::<Link>(link).stats().clone();
        assert_eq!(stats.ce_marked_pkts, 0);
        assert!(stats.dropped_pkts > 0, "RED never early-dropped: {stats:?}");
    }

    #[test]
    fn tx_burst_preserves_wire_spacing_with_fewer_events() {
        let run = |burst: u32| {
            let mut sim = Simulator::new(0);
            let sink = sim.add_component(Sink { received: vec![] });
            let link = sim.add_component(Link::new(
                Bandwidth::from_mbps(100),
                SimDuration::from_millis(1),
                u64::MAX,
                NextHop::ToPacketDst,
            ));
            sim.component_mut::<Link>(link).set_tx_burst(burst);
            for i in 0..9u64 {
                sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(i as u32, sink, 1500)));
            }
            sim.run();
            let l = sim.component::<Link>(link);
            assert_eq!(l.stats().transmitted_pkts, 9);
            assert_eq!(l.in_service_pkts(), 0);
            (
                sim.component::<Sink>(sink)
                    .received
                    .iter()
                    .map(|(t, p)| (*t, p.flow.0))
                    .collect::<Vec<_>>(),
                sim.events_processed(),
            )
        };
        let (legacy_rx, legacy_events) = run(1);
        // Per-frame wire spacing: 120 µs serialization + 1 ms propagation.
        assert_eq!(legacy_rx[0].0, SimTime::from_micros(1_120));
        assert_eq!(legacy_rx[8].0, SimTime::from_micros(2_080));
        for burst in [2, 4, 16] {
            let (rx, events) = run(burst);
            assert_eq!(rx, legacy_rx, "tx_burst={burst} changed deliveries");
            assert!(
                events < legacy_events,
                "tx_burst={burst} saved no events ({events} vs {legacy_events})"
            );
        }
    }

    #[test]
    fn tx_burst_drop_tail_counters_stay_exact() {
        // Buffer fits two waiting packets: 1 in service + 2 queued + 2
        // dropped, exactly as on the legacy path.
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            3000,
            NextHop::ToPacketDst,
        ));
        sim.component_mut::<Link>(link).set_tx_burst(8);
        for i in 0..5 {
            sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(i, sink, 1500)));
        }
        sim.run();
        assert_eq!(sim.component::<Sink>(sink).received.len(), 3);
        let stats = sim.component::<Link>(link).stats();
        assert_eq!(stats.arrived_pkts, 5);
        assert_eq!(stats.dropped_pkts, 2);
        assert_eq!(stats.transmitted_pkts, 3);
        assert_eq!(stats.transmitted_bytes, 4500);
    }

    #[test]
    fn tx_burst_is_ignored_while_faults_are_attached() {
        use ccsim_fault::FaultPlan;
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            u64::MAX,
            NextHop::ToPacketDst,
        ));
        sim.component_mut::<Link>(link).set_tx_burst(8);
        let plan = FaultPlan::none().duplicate(SimTime::ZERO, 1.0);
        arm_faults(&mut sim, link, LinkFaultInjector::new(&plan, 9));
        sim.schedule(SimTime::from_secs(1), link, Msg::Packet(pkt(0, sink, 1500)));
        sim.run();
        // The duplication fate still applies: the batched path would skip
        // delivery-fate sampling, so it must disable itself.
        assert_eq!(sim.component::<Sink>(sink).received.len(), 2);
    }

    #[test]
    fn log_from_excludes_warmup_drops() {
        let mut sim = Simulator::new(0);
        let sink = sim.add_component(Sink { received: vec![] });
        let link = sim.add_component(Link::new(
            Bandwidth::from_kbps(8), // 1 KB/s: 1000 B takes 1 s to serialize
            SimDuration::ZERO,
            0,
            NextHop::ToPacketDst,
        ));
        sim.component_mut::<Link>(link)
            .set_log_from(SimTime::from_millis(500));
        // t=0: starts service. t=1ms: dropped (before log_from).
        // t=600ms: dropped (after log_from).
        sim.schedule(SimTime::ZERO, link, Msg::Packet(pkt(0, sink, 1000)));
        sim.schedule(
            SimTime::from_millis(1),
            link,
            Msg::Packet(pkt(0, sink, 1000)),
        );
        sim.schedule(
            SimTime::from_millis(600),
            link,
            Msg::Packet(pkt(0, sink, 1000)),
        );
        sim.run();
        let l = sim.component::<Link>(link);
        assert_eq!(l.stats().dropped_pkts, 2);
        assert_eq!(l.drop_log(), &[SimTime::from_millis(600)]);
    }
}
