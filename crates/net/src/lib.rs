//! # ccsim-net — network elements
//!
//! The building blocks of simulated topologies:
//!
//! * [`packet`] — the `Copy` packet representation (data segments, ACKs with
//!   SACK blocks) and the workspace-wide size constants.
//! * [`msg`] — the single message type ([`Msg`]) exchanged by all components,
//!   and timer tokens with generation-based lazy cancellation.
//! * [`link`] — rate-limited links with byte-capacity queues and full drop
//!   instrumentation: the equivalent of the paper's BESS switch port.
//! * [`aqm`] — the buffering disciplines a link can run: drop-tail (the
//!   paper's configuration), RED, CoDel, and PIE, with ECN CE marking.
//! * [`delay`] — a pure constant-delay element (the `netem` equivalent).
//! * [`path`] — the shared per-hop delivery-latency arithmetic.
//!
//! Topology *description* (graphs, generators, routing) lives in
//! `ccsim-topo`; construction into engine components lives in `ccsim-core`,
//! which also owns the TCP endpoints that terminate these links.

pub mod aqm;
pub mod delay;
pub mod link;
pub mod msg;
pub mod packet;
pub mod path;

pub use aqm::{AqmKind, AqmQueue, Codel, Dequeued, DropTail, Enqueued, Pie, Red};
pub use delay::{DelayLine, DelayNext};
pub use link::{Link, LinkMetrics, LinkStats, NextHop, AQM_TICK, FAULT_TICK};
pub use msg::{Msg, TimerToken};
pub use packet::{
    FlowId, Packet, PacketKind, SackBlock, SackBlocks, DEFAULT_MSS, ECN_CE, ECN_CWR, ECN_ECE,
    ECN_ECT, HEADER_BYTES,
};
