//! # ccsim-net — network elements
//!
//! The building blocks of simulated topologies:
//!
//! * [`packet`] — the `Copy` packet representation (data segments, ACKs with
//!   SACK blocks) and the workspace-wide size constants.
//! * [`msg`] — the single message type ([`Msg`]) exchanged by all components,
//!   and timer tokens with generation-based lazy cancellation.
//! * [`link`] — rate-limited links with drop-tail byte-capacity queues and
//!   full drop instrumentation: the equivalent of the paper's BESS switch
//!   port.
//! * [`delay`] — a pure constant-delay element (the `netem` equivalent).
//!
//! Topology *construction* (the dumbbell) lives in `ccsim-core`, which also
//! owns the TCP endpoints that terminate these links.

pub mod delay;
pub mod link;
pub mod msg;
pub mod packet;

pub use delay::{DelayLine, DelayNext};
pub use link::{Link, LinkMetrics, LinkStats, NextHop, FAULT_TICK};
pub use msg::{Msg, TimerToken};
pub use packet::{FlowId, Packet, PacketKind, SackBlock, SackBlocks, DEFAULT_MSS, HEADER_BYTES};
