//! Active queue management disciplines.
//!
//! [`AqmQueue`] is the buffering policy extracted from [`Link`]'s original
//! hard-coded drop-tail FIFO: the link owns arrival/transmit accounting and
//! the serializer, the queue decides *admission* (enqueue-time drop or CE
//! mark), *release* (dequeue-time drop or mark, as CoDel requires), and any
//! periodic control-law update (PIE). This is the substitution point for the
//! testbed's switch queue configuration — the paper ran everything drop-tail;
//! the AQM axis is what lets campaigns ask how its fairness conclusions move
//! under RED, CoDel, or PIE.
//!
//! ## Determinism
//!
//! Probabilistic disciplines (RED, PIE) draw from their own dedicated
//! [`SmallRng`] stream (seeded by the harness from the master seed via
//! `RngFactory::derive_seed("aqm", link_index)`), so enabling an AQM on one
//! link never perturbs any other random stream. All floating-point control
//! laws stick to IEEE-exact operations (`+ - * / sqrt` and integer `powi`)
//! so digests are bit-stable across platforms.
//!
//! ## Invariants
//!
//! Every discipline enforces the link's hard byte capacity: an arrival that
//! would overflow `buffer_bytes` is dropped even when ECN marking is active
//! (RFC 3168 §5: mark-instead-of-drop applies to the *early* congestion
//! signal, not to an actually-full buffer). This preserves the watchdog's
//! `QueueBound` invariant (`backlog <= buffer`) unchanged.
//!
//! [`Link`]: crate::link::Link

use crate::packet::Packet;
use ccsim_sim::{Bandwidth, SimDuration, SimTime, SnapError, SnapReader, SnapWriter};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::collections::VecDeque;

/// The AQM disciplines a link can run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum AqmKind {
    /// Plain drop-tail FIFO (the paper's configuration; the default).
    #[default]
    DropTail,
    /// Random Early Detection (Floyd/Jacobson), gentle variant, byte-mode
    /// EWMA with count correction.
    Red,
    /// CoDel (Nichols/Jacobson): sojourn-time control, drop-at-dequeue,
    /// `interval/sqrt(count)` law.
    Codel,
    /// PIE (RFC 8033): proportional-integral probability updated on a
    /// periodic tick, drop-at-enqueue.
    Pie,
}

impl AqmKind {
    /// Canonical lowercase name, as used in scenario JSON and campaign
    /// axis values.
    pub fn as_str(self) -> &'static str {
        match self {
            AqmKind::DropTail => "droptail",
            AqmKind::Red => "red",
            AqmKind::Codel => "codel",
            AqmKind::Pie => "pie",
        }
    }

    /// Parse a canonical name (see [`AqmKind::as_str`]).
    pub fn parse(s: &str) -> Option<AqmKind> {
        match s {
            "droptail" => Some(AqmKind::DropTail),
            "red" => Some(AqmKind::Red),
            "codel" => Some(AqmKind::Codel),
            "pie" => Some(AqmKind::Pie),
            _ => None,
        }
    }

    /// All kinds, for axis expansion and exhaustive tests.
    pub const ALL: [AqmKind; 4] = [
        AqmKind::DropTail,
        AqmKind::Red,
        AqmKind::Codel,
        AqmKind::Pie,
    ];

    /// Build a queue of this kind for a link with the given buffer, drain
    /// rate, ECN marking flag, and RNG seed. Defaults follow the
    /// disciplines' reference parameterizations, scaled off the buffer.
    pub fn build(
        self,
        buffer_bytes: u64,
        rate: Bandwidth,
        ecn: bool,
        seed: u64,
    ) -> Box<dyn AqmQueue> {
        match self {
            AqmKind::DropTail => Box::new(DropTail::new(buffer_bytes)),
            AqmKind::Red => Box::new(Red::new(buffer_bytes, rate, ecn, seed)),
            AqmKind::Codel => Box::new(Codel::new(buffer_bytes, ecn)),
            AqmKind::Pie => Box::new(Pie::new(buffer_bytes, rate, ecn, seed)),
        }
    }
}

/// Admission verdict for an arriving packet.
#[derive(Debug)]
pub enum Enqueued {
    /// Accepted unchanged.
    Queued,
    /// Accepted with CE newly set (ECN marking in place of an early drop).
    Marked,
    /// Rejected; the packet is returned for drop accounting.
    Dropped(Packet),
}

/// Release verdict when the link asks for the next packet to serialize.
#[derive(Debug)]
pub enum Dequeued {
    /// Serve this packet.
    Deliver(Packet),
    /// Serve this packet, CE newly set (CoDel-style mark at dequeue).
    Marked(Packet),
    /// This packet is dropped at dequeue (CoDel); the link accounts the
    /// drop and asks again.
    Dropped(Packet),
    /// Queue empty.
    Empty,
}

/// A link buffering policy. See the module docs for the division of labor
/// between [`Link`](crate::link::Link) and the queue.
pub trait AqmQueue {
    /// Which discipline this is.
    fn kind(&self) -> AqmKind;

    /// Offer an arriving packet. The in-service packet is *not* in this
    /// queue (it has left the buffer for the wire), matching how the
    /// original drop-tail bound was enforced.
    fn enqueue(&mut self, now: SimTime, p: Packet) -> Enqueued;

    /// Release the next packet for serialization.
    fn dequeue(&mut self, now: SimTime) -> Dequeued;

    /// Bytes currently waiting (excluding in-service).
    fn queued_bytes(&self) -> u64;

    /// Packets currently waiting (excluding in-service).
    fn queued_pkts(&self) -> u64;

    /// The hard byte capacity this queue enforces.
    fn buffer_bytes(&self) -> u64;

    /// Period of the discipline's control-law timer, or `None` for purely
    /// event-driven disciplines. A link arms the tick lazily on the first
    /// arrival, so `None` costs zero events.
    fn tick_interval(&self) -> Option<SimDuration> {
        None
    }

    /// Periodic control-law update (PIE's probability recomputation).
    fn on_tick(&mut self, _now: SimTime) {}

    /// Whether the control-law clock still has work to do. After each
    /// [`on_tick`](Self::on_tick) the link re-arms the timer only while
    /// this is `true` (or a packet is in service) and re-arms lazily at
    /// the next arrival otherwise — so a fully quiescent discipline lets
    /// an otherwise-idle simulation drain instead of ticking forever.
    fn tick_needed(&self) -> bool {
        true
    }

    /// The link's drain rate changed (fault injection); disciplines that
    /// estimate queueing delay from the rate must re-anchor.
    fn on_rate_change(&mut self, _rate: Bandwidth) {}

    /// Approximate heap footprint of the discipline's packet storage
    /// (capacity, not occupancy — what the allocator actually holds).
    /// Feeds the profiler's `net/link_queues` memory account.
    fn memory_bytes(&self) -> u64 {
        0
    }

    /// Serialize the discipline's mutable state for a checkpoint:
    /// buffered packets plus every control-law variable (EWMAs, episode
    /// counters, RNG state). Configuration (thresholds, buffer size, ECN
    /// flag) is *not* written — restore rebuilds the discipline from the
    /// scenario and then overlays this state.
    ///
    /// Deliberately mandatory (no default body): a new discipline that
    /// forgot to implement it would silently break restore digests.
    fn save_state(&self, w: &mut SnapWriter);

    /// Restore state written by [`AqmQueue::save_state`] into a
    /// freshly-built discipline of the same kind and configuration.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Shared helper: serialize a packet FIFO.
fn save_pkt_queue(w: &mut SnapWriter, q: &VecDeque<Packet>) {
    w.u64(q.len() as u64);
    for p in q {
        p.save_state(w);
    }
}

/// Shared helper: deserialize a packet FIFO.
fn load_pkt_queue(r: &mut SnapReader<'_>) -> Result<VecDeque<Packet>, SnapError> {
    let n = r.usize()?;
    let mut q = VecDeque::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        q.push_back(Packet::load_state(r)?);
    }
    Ok(q)
}

/// Uniform draw in `[0, 1)` from the top 53 bits of a `u64`, the standard
/// exact construction (no rejection, bit-stable everywhere).
#[inline]
fn uniform_f64(rng: &mut SmallRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// ---------------------------------------------------------------------------
// DropTail
// ---------------------------------------------------------------------------

/// The original hard-coded policy, verbatim: accept while
/// `queued_bytes + wire <= buffer`, drop the arriving packet otherwise.
/// Behavior (and therefore every outcome digest) is identical to the
/// pre-extraction `Link`.
pub struct DropTail {
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    buffer_bytes: u64,
}

impl DropTail {
    /// A drop-tail FIFO with the given byte capacity.
    pub fn new(buffer_bytes: u64) -> DropTail {
        DropTail {
            queue: VecDeque::new(),
            queued_bytes: 0,
            buffer_bytes,
        }
    }
}

impl AqmQueue for DropTail {
    fn kind(&self) -> AqmKind {
        AqmKind::DropTail
    }

    fn memory_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.queue.capacity() * std::mem::size_of::<Packet>()) as u64
    }

    fn enqueue(&mut self, _now: SimTime, p: Packet) -> Enqueued {
        if self.queued_bytes + p.wire_bytes as u64 > self.buffer_bytes {
            return Enqueued::Dropped(p);
        }
        self.queued_bytes += p.wire_bytes as u64;
        self.queue.push_back(p);
        Enqueued::Queued
    }

    fn dequeue(&mut self, _now: SimTime) -> Dequeued {
        match self.queue.pop_front() {
            Some(p) => {
                self.queued_bytes -= p.wire_bytes as u64;
                Dequeued::Deliver(p)
            }
            None => Dequeued::Empty,
        }
    }

    fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    fn queued_pkts(&self) -> u64 {
        self.queue.len() as u64
    }

    fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    fn save_state(&self, w: &mut SnapWriter) {
        save_pkt_queue(w, &self.queue);
        w.u64(self.queued_bytes);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.queue = load_pkt_queue(r)?;
        self.queued_bytes = r.u64()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// RED
// ---------------------------------------------------------------------------

/// Gentle RED in byte mode.
///
/// Thresholds default to the classic buffer-relative rule of thumb:
/// `min_th = buffer/4`, `max_th = 3·buffer/4`, `max_p = 0.1`, `w_q = 1/512`.
/// Between the thresholds the per-packet probability ramps linearly with the
/// EWMA average queue and is corrected by the count of packets since the
/// last mark/drop (Floyd/Jacobson eq. 3), which de-clusters the signal.
/// Above `max_th` the gentle ramp continues to `2·max_th` before forcing
/// every arrival.
pub struct Red {
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    buffer_bytes: u64,
    min_th: f64,
    max_th: f64,
    max_p: f64,
    w_q: f64,
    ecn: bool,
    /// EWMA of the queue depth in bytes.
    avg: f64,
    /// Packets since the last mark/drop; -1 right after one.
    count: i64,
    /// When the queue went empty (for the idle-decay estimate).
    empty_since: Option<SimTime>,
    /// Serialization time of a nominal 1500 B frame, the idle-decay unit.
    nominal_pkt_time: SimDuration,
    rng: SmallRng,
}

impl Red {
    /// Gentle RED with buffer-relative default thresholds.
    pub fn new(buffer_bytes: u64, rate: Bandwidth, ecn: bool, seed: u64) -> Red {
        Red {
            queue: VecDeque::new(),
            queued_bytes: 0,
            buffer_bytes,
            min_th: buffer_bytes as f64 / 4.0,
            max_th: buffer_bytes as f64 * 0.75,
            max_p: 0.1,
            w_q: 1.0 / 512.0,
            ecn,
            avg: 0.0,
            count: -1,
            empty_since: Some(SimTime::ZERO),
            nominal_pkt_time: rate.serialization_time(1500),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The current EWMA average queue depth in bytes (diagnostics).
    pub fn avg_queue_bytes(&self) -> f64 {
        self.avg
    }

    /// Update the EWMA at an arrival instant.
    fn update_avg(&mut self, now: SimTime) {
        if let Some(since) = self.empty_since.take() {
            // Idle period: decay as if `m` small packets had drained
            // (integer powi keeps this IEEE-exact).
            let unit = self.nominal_pkt_time.as_nanos().max(1);
            let m = (now.saturating_since(since).as_nanos() / unit).min(10_000) as i32;
            self.avg *= (1.0 - self.w_q).powi(m);
        }
        self.avg += self.w_q * (self.queued_bytes as f64 - self.avg);
    }

    /// Early-signal decision for one arrival: `true` = mark/drop.
    fn should_signal(&mut self) -> bool {
        if self.avg < self.min_th {
            self.count = -1;
            return false;
        }
        // Gentle RED: linear ramp max_p..1 over [max_th, 2·max_th].
        let p_b = if self.avg < self.max_th {
            self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        } else if self.avg < 2.0 * self.max_th {
            self.max_p + (1.0 - self.max_p) * (self.avg - self.max_th) / self.max_th
        } else {
            1.0
        };
        self.count += 1;
        let correction = 1.0 - self.count as f64 * p_b;
        let p_a = if correction <= 0.0 {
            1.0
        } else {
            (p_b / correction).min(1.0)
        };
        if uniform_f64(&mut self.rng) < p_a {
            self.count = 0;
            true
        } else {
            false
        }
    }
}

impl AqmQueue for Red {
    fn kind(&self) -> AqmKind {
        AqmKind::Red
    }

    fn memory_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.queue.capacity() * std::mem::size_of::<Packet>()) as u64
    }

    fn enqueue(&mut self, now: SimTime, mut p: Packet) -> Enqueued {
        self.update_avg(now);
        let signal = self.should_signal();
        if self.queued_bytes + p.wire_bytes as u64 > self.buffer_bytes {
            // Forced drop: the physical buffer is full (never ECN-marked).
            return Enqueued::Dropped(p);
        }
        if signal && !(self.ecn && p.is_ect()) {
            return Enqueued::Dropped(p);
        }
        let marked = signal && self.ecn && p.is_ect();
        if marked {
            p.mark_ce();
        }
        self.queued_bytes += p.wire_bytes as u64;
        self.queue.push_back(p);
        if marked {
            Enqueued::Marked
        } else {
            Enqueued::Queued
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Dequeued {
        match self.queue.pop_front() {
            Some(p) => {
                self.queued_bytes -= p.wire_bytes as u64;
                if self.queue.is_empty() {
                    self.empty_since = Some(now);
                }
                Dequeued::Deliver(p)
            }
            None => Dequeued::Empty,
        }
    }

    fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    fn queued_pkts(&self) -> u64 {
        self.queue.len() as u64
    }

    fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    fn save_state(&self, w: &mut SnapWriter) {
        save_pkt_queue(w, &self.queue);
        w.u64(self.queued_bytes);
        w.f64(self.avg);
        w.i64(self.count);
        w.opt(self.empty_since, |w, t| w.time(t));
        let s = self.rng.state();
        for word in s {
            w.u64(word);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.queue = load_pkt_queue(r)?;
        self.queued_bytes = r.u64()?;
        self.avg = r.f64()?;
        self.count = r.i64()?;
        self.empty_since = r.opt(|r| r.time())?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// CoDel
// ---------------------------------------------------------------------------

/// Sojourn target: 5 ms (the CoDel paper's "good queue" bound).
pub const CODEL_TARGET: SimDuration = SimDuration::from_millis(5);
/// Control interval: 100 ms (a worst-case Internet RTT).
pub const CODEL_INTERVAL: SimDuration = SimDuration::from_millis(100);

/// CoDel: drop (or mark) at *dequeue* when per-packet sojourn time has
/// exceeded `target` for at least `interval`, then tighten the drop spacing
/// as `interval/sqrt(count)` until the queue drains below target.
///
/// Packets are timestamped at enqueue in the discipline's own deque, so the
/// sojourn clock is exact virtual time, not an estimate.
pub struct Codel {
    queue: VecDeque<(SimTime, Packet)>,
    queued_bytes: u64,
    buffer_bytes: u64,
    ecn: bool,
    target: SimDuration,
    interval: SimDuration,
    /// When sojourn first stayed above target, plus `interval`.
    first_above_at: Option<SimTime>,
    /// In the dropping state?
    dropping: bool,
    /// Next scheduled drop instant while dropping.
    drop_next: SimTime,
    /// Drops in the current dropping episode.
    count: u32,
    /// `count` when the previous episode ended (for the re-entry shortcut).
    last_count: u32,
}

impl Codel {
    /// CoDel with the reference 5 ms / 100 ms parameters.
    pub fn new(buffer_bytes: u64, ecn: bool) -> Codel {
        Codel {
            queue: VecDeque::new(),
            queued_bytes: 0,
            buffer_bytes,
            ecn,
            target: CODEL_TARGET,
            interval: CODEL_INTERVAL,
            first_above_at: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            last_count: 0,
        }
    }

    /// Drops in the current episode (diagnostics).
    pub fn drop_count(&self) -> u32 {
        self.count
    }

    /// `drop_next` advance: `interval / sqrt(count)`.
    fn control_law(&self, from: SimTime) -> SimTime {
        let nanos = self.interval.as_nanos() as f64 / (self.count.max(1) as f64).sqrt();
        from + SimDuration::from_nanos(nanos as u64)
    }

    /// Whether the packet popped at `now` is past the sojourn bound
    /// (updates the first-above clock).
    fn ok_to_signal(&mut self, enqueued_at: SimTime, now: SimTime) -> bool {
        let sojourn = now.saturating_since(enqueued_at);
        if sojourn < self.target || self.queued_bytes <= 1500 {
            self.first_above_at = None;
            false
        } else {
            match self.first_above_at {
                None => {
                    self.first_above_at = Some(now + self.interval);
                    false
                }
                Some(at) => now >= at,
            }
        }
    }
}

impl AqmQueue for Codel {
    fn kind(&self) -> AqmKind {
        AqmKind::Codel
    }

    fn memory_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>()
            + self.queue.capacity() * std::mem::size_of::<(SimTime, Packet)>()) as u64
    }

    fn enqueue(&mut self, now: SimTime, p: Packet) -> Enqueued {
        if self.queued_bytes + p.wire_bytes as u64 > self.buffer_bytes {
            return Enqueued::Dropped(p);
        }
        self.queued_bytes += p.wire_bytes as u64;
        self.queue.push_back((now, p));
        Enqueued::Queued
    }

    fn dequeue(&mut self, now: SimTime) -> Dequeued {
        let Some((enq_at, mut p)) = self.queue.pop_front() else {
            self.dropping = false;
            return Dequeued::Empty;
        };
        self.queued_bytes -= p.wire_bytes as u64;
        let signal = self.ok_to_signal(enq_at, now);
        if self.dropping {
            if !signal {
                self.dropping = false;
            } else if now >= self.drop_next {
                self.count += 1;
                self.drop_next = self.control_law(self.drop_next);
                if self.ecn && p.is_ect() {
                    p.mark_ce();
                    return Dequeued::Marked(p);
                }
                return Dequeued::Dropped(p);
            }
        } else if signal {
            // Enter the dropping state. Resume near the previous episode's
            // rate if it ended recently (the "drop spacing memory").
            self.dropping = true;
            self.count = if self.count > 2 && now.saturating_since(self.drop_next) < self.interval {
                self.count - 2
            } else {
                1
            };
            self.last_count = self.count;
            self.drop_next = self.control_law(now);
            if self.ecn && p.is_ect() {
                p.mark_ce();
                return Dequeued::Marked(p);
            }
            return Dequeued::Dropped(p);
        }
        Dequeued::Deliver(p)
    }

    fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    fn queued_pkts(&self) -> u64 {
        self.queue.len() as u64
    }

    fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.queue.len() as u64);
        for (at, p) in &self.queue {
            w.time(*at);
            p.save_state(w);
        }
        w.u64(self.queued_bytes);
        w.opt(self.first_above_at, |w, t| w.time(t));
        w.bool(self.dropping);
        w.time(self.drop_next);
        w.u32(self.count);
        w.u32(self.last_count);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        let mut queue = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let at = r.time()?;
            queue.push_back((at, Packet::load_state(r)?));
        }
        self.queue = queue;
        self.queued_bytes = r.u64()?;
        self.first_above_at = r.opt(|r| r.time())?;
        self.dropping = r.bool()?;
        self.drop_next = r.time()?;
        self.count = r.u32()?;
        self.last_count = r.u32()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// PIE
// ---------------------------------------------------------------------------

/// PIE queue-delay target: 15 ms (RFC 8033 default).
pub const PIE_TARGET: SimDuration = SimDuration::from_millis(15);
/// PIE probability-update period: 15 ms (RFC 8033 `T_UPDATE`).
pub const PIE_TUPDATE: SimDuration = SimDuration::from_millis(15);
/// PIE initial burst allowance: 150 ms.
pub const PIE_BURST_ALLOWANCE: SimDuration = SimDuration::from_millis(150);

/// PIE (RFC 8033): a proportional-integral controller updates a drop/mark
/// probability every `T_UPDATE` from the estimated queueing delay
/// (`backlog / drain rate`); arrivals are then dropped (or marked) with
/// that probability. The periodic update runs off the link's AQM tick
/// timer ([`AqmQueue::tick_interval`]).
pub struct Pie {
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    buffer_bytes: u64,
    ecn: bool,
    rate: Bandwidth,
    target: SimDuration,
    /// Current drop probability.
    prob: f64,
    qdelay_old: SimDuration,
    burst_allowance: SimDuration,
    rng: SmallRng,
}

impl Pie {
    /// PIE with RFC 8033 defaults against the given drain rate.
    pub fn new(buffer_bytes: u64, rate: Bandwidth, ecn: bool, seed: u64) -> Pie {
        Pie {
            queue: VecDeque::new(),
            queued_bytes: 0,
            buffer_bytes,
            ecn,
            rate,
            target: PIE_TARGET,
            prob: 0.0,
            qdelay_old: SimDuration::ZERO,
            burst_allowance: PIE_BURST_ALLOWANCE,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Current drop/mark probability (diagnostics).
    pub fn drop_probability(&self) -> f64 {
        self.prob
    }

    /// Estimated queueing delay of the current backlog.
    fn qdelay(&self) -> SimDuration {
        self.rate.serialization_time(self.queued_bytes)
    }

    /// RFC 8033 §4.2 auto-tuning: scale the update step down while the
    /// probability is small so the controller stays stable near zero.
    fn scale_for(prob: f64) -> f64 {
        if prob < 0.000_001 {
            1.0 / 2048.0
        } else if prob < 0.000_01 {
            1.0 / 512.0
        } else if prob < 0.000_1 {
            1.0 / 128.0
        } else if prob < 0.001 {
            1.0 / 32.0
        } else if prob < 0.01 {
            1.0 / 8.0
        } else if prob < 0.1 {
            1.0 / 2.0
        } else {
            1.0
        }
    }

    /// Arrival-time decision: `true` = drop/mark this packet.
    fn should_signal(&mut self) -> bool {
        if self.burst_allowance > SimDuration::ZERO {
            return false;
        }
        // RFC 8033 §4.1 safeguards: never signal when the queue is trivially
        // short or the controller has barely engaged.
        if (self.qdelay_old < self.target / 2 && self.prob < 0.2) || self.queued_bytes < 2 * 1500 {
            return false;
        }
        uniform_f64(&mut self.rng) < self.prob
    }
}

impl AqmQueue for Pie {
    fn kind(&self) -> AqmKind {
        AqmKind::Pie
    }

    fn memory_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.queue.capacity() * std::mem::size_of::<Packet>()) as u64
    }

    fn enqueue(&mut self, _now: SimTime, mut p: Packet) -> Enqueued {
        let signal = self.should_signal();
        if self.queued_bytes + p.wire_bytes as u64 > self.buffer_bytes {
            return Enqueued::Dropped(p);
        }
        if signal && !(self.ecn && p.is_ect()) {
            return Enqueued::Dropped(p);
        }
        let marked = signal && self.ecn && p.is_ect();
        if marked {
            p.mark_ce();
        }
        self.queued_bytes += p.wire_bytes as u64;
        self.queue.push_back(p);
        if marked {
            Enqueued::Marked
        } else {
            Enqueued::Queued
        }
    }

    fn dequeue(&mut self, _now: SimTime) -> Dequeued {
        match self.queue.pop_front() {
            Some(p) => {
                self.queued_bytes -= p.wire_bytes as u64;
                Dequeued::Deliver(p)
            }
            None => Dequeued::Empty,
        }
    }

    fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    fn queued_pkts(&self) -> u64 {
        self.queue.len() as u64
    }

    fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(PIE_TUPDATE)
    }

    fn on_tick(&mut self, _now: SimTime) {
        let qdelay = self.qdelay();
        // p += α·(qdelay − target) + β·(qdelay − qdelay_old), in seconds,
        // with RFC 8033 α = 0.125, β = 1.25, scaled near zero.
        let alpha = 0.125;
        let beta = 1.25;
        let delta = alpha * (qdelay.as_secs_f64() - self.target.as_secs_f64())
            + beta * (qdelay.as_secs_f64() - self.qdelay_old.as_secs_f64());
        self.prob = (self.prob + delta * Self::scale_for(self.prob)).clamp(0.0, 1.0);
        // Exponential decay when the queue has fully drained; snap to an
        // exact zero once negligible so `tick_needed` can quiesce instead
        // of chasing the decay into the subnormals.
        if qdelay == SimDuration::ZERO && self.qdelay_old == SimDuration::ZERO {
            self.prob *= 0.98;
            if self.prob < 1e-9 {
                self.prob = 0.0;
            }
        }
        // Burst allowance: consume while the controller is inactive-safe,
        // re-grant once congestion has fully cleared.
        if self.burst_allowance > SimDuration::ZERO {
            self.burst_allowance = self.burst_allowance.saturating_sub(PIE_TUPDATE);
        } else if self.prob == 0.0 && qdelay < self.target / 2 && self.qdelay_old < self.target / 2
        {
            self.burst_allowance = PIE_BURST_ALLOWANCE;
        }
        self.qdelay_old = qdelay;
    }

    fn on_rate_change(&mut self, rate: Bandwidth) {
        self.rate = rate;
    }

    /// Quiescent once the backlog is gone, the probability has decayed to
    /// exactly zero, and the burst allowance has been fully re-granted —
    /// at that point every subsequent tick would be a no-op.
    fn tick_needed(&self) -> bool {
        self.queued_bytes > 0 || self.prob > 0.0 || self.burst_allowance < PIE_BURST_ALLOWANCE
    }

    fn save_state(&self, w: &mut SnapWriter) {
        save_pkt_queue(w, &self.queue);
        w.u64(self.queued_bytes);
        // `rate` is mutable state: fault injection can have changed it
        // since construction.
        w.u64(self.rate.as_bps());
        w.f64(self.prob);
        w.duration(self.qdelay_old);
        w.duration(self.burst_allowance);
        let s = self.rng.state();
        for word in s {
            w.u64(word);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.queue = load_pkt_queue(r)?;
        self.queued_bytes = r.u64()?;
        self.rate = Bandwidth::from_bps(r.u64()?);
        self.prob = r.f64()?;
        self.qdelay_old = r.duration()?;
        self.burst_allowance = r.duration()?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use ccsim_sim::ComponentId;

    fn pkt(bytes: u32) -> Packet {
        let mut p = Packet::data(
            FlowId(0),
            ComponentId::from_raw(0),
            0,
            bytes as u64,
            SimTime::ZERO,
        );
        p.wire_bytes = bytes;
        p
    }

    fn ect_pkt(bytes: u32) -> Packet {
        let mut p = pkt(bytes);
        p.set_ect();
        p
    }

    #[test]
    fn kind_names_round_trip() {
        for k in AqmKind::ALL {
            assert_eq!(AqmKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(AqmKind::parse("fq_codel"), None);
        assert_eq!(AqmKind::default(), AqmKind::DropTail);
    }

    #[test]
    fn droptail_matches_legacy_admission_rule() {
        let mut q = DropTail::new(3000);
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1500)),
            Enqueued::Queued
        ));
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1500)),
            Enqueued::Queued
        ));
        // Third 1500 B arrival overflows the 3000 B buffer.
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1500)),
            Enqueued::Dropped(_)
        ));
        assert_eq!(q.queued_bytes(), 3000);
        assert_eq!(q.queued_pkts(), 2);
        assert!(matches!(q.dequeue(SimTime::ZERO), Dequeued::Deliver(_)));
        assert_eq!(q.queued_bytes(), 1500);
        assert!(matches!(q.dequeue(SimTime::ZERO), Dequeued::Deliver(_)));
        assert!(matches!(q.dequeue(SimTime::ZERO), Dequeued::Empty));
    }

    #[test]
    fn red_below_min_threshold_never_signals() {
        let mut q = Red::new(100_000, Bandwidth::from_mbps(100), false, 1);
        for _ in 0..10 {
            assert!(matches!(
                q.enqueue(SimTime::ZERO, pkt(1500)),
                Enqueued::Queued
            ));
            let _ = q.dequeue(SimTime::ZERO);
        }
    }

    #[test]
    fn red_sustained_overload_drops_probabilistically() {
        let mut q = Red::new(30_000, Bandwidth::from_mbps(100), false, 1);
        let mut dropped = 0;
        // Hold the queue near full so the EWMA climbs past min_th.
        for _ in 0..2_000 {
            match q.enqueue(SimTime::ZERO, pkt(1500)) {
                Enqueued::Dropped(_) => {
                    dropped += 1;
                    let _ = q.dequeue(SimTime::ZERO); // keep space available
                }
                _ => {
                    if q.queued_bytes() > 24_000 {
                        let _ = q.dequeue(SimTime::ZERO);
                    }
                }
            }
        }
        assert!(
            dropped > 0,
            "RED never produced an early drop under overload"
        );
        // And some drops must be early (queue not physically full).
        assert!(q.avg_queue_bytes() > 30_000.0 / 4.0);
    }

    #[test]
    fn red_marks_ect_packets_when_ecn_enabled() {
        let mut q = Red::new(30_000, Bandwidth::from_mbps(100), true, 1);
        let mut marked = 0;
        for _ in 0..2_000 {
            match q.enqueue(SimTime::ZERO, ect_pkt(1500)) {
                Enqueued::Marked => {
                    marked += 1;
                    let _ = q.dequeue(SimTime::ZERO);
                }
                Enqueued::Dropped(_) => {
                    let _ = q.dequeue(SimTime::ZERO);
                }
                Enqueued::Queued => {
                    if q.queued_bytes() > 24_000 {
                        let _ = q.dequeue(SimTime::ZERO);
                    }
                }
            }
        }
        assert!(marked > 0, "ECN-capable packets were never CE-marked");
        // Marked packets come back out with CE set.
        let mut saw_ce = false;
        loop {
            match q.dequeue(SimTime::ZERO) {
                Dequeued::Deliver(p) => saw_ce |= p.is_ce(),
                Dequeued::Empty => break,
                _ => {}
            }
        }
        assert!(saw_ce);
    }

    #[test]
    fn red_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut q = Red::new(30_000, Bandwidth::from_mbps(100), false, seed);
            let mut verdicts = Vec::new();
            for i in 0..500 {
                let v = matches!(
                    q.enqueue(SimTime::from_micros(i * 120), pkt(1500)),
                    Enqueued::Dropped(_)
                );
                verdicts.push(v);
                if q.queued_bytes() > 24_000 {
                    let _ = q.dequeue(SimTime::from_micros(i * 120));
                }
            }
            verdicts
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn codel_drops_at_dequeue_after_sustained_sojourn() {
        let mut q = Codel::new(u64::MAX, false);
        // Fill for 300 ms without draining: sojourns far above 5 ms.
        for i in 0..300u64 {
            assert!(matches!(
                q.enqueue(SimTime::from_millis(i), pkt(1500)),
                Enqueued::Queued
            ));
        }
        // Drain starting at t=400ms: sojourn of the head is 400 ms.
        let mut drops = 0;
        let mut delivered = 0;
        for i in 0..300u64 {
            match q.dequeue(SimTime::from_millis(400 + i)) {
                Dequeued::Dropped(_) => drops += 1,
                Dequeued::Deliver(_) => delivered += 1,
                Dequeued::Marked(_) => {}
                Dequeued::Empty => break,
            }
        }
        assert!(drops > 0, "CoDel never dropped despite 400 ms sojourns");
        assert!(delivered > 0, "CoDel must deliver between spaced drops");
    }

    #[test]
    fn codel_is_quiet_below_target() {
        let mut q = Codel::new(u64::MAX, false);
        // Enqueue/dequeue promptly: sojourn 1 ms, never signals.
        for i in 0..500u64 {
            let t = SimTime::from_millis(i);
            assert!(matches!(q.enqueue(t, pkt(1500)), Enqueued::Queued));
            assert!(matches!(
                q.dequeue(t + SimDuration::from_millis(1)),
                Dequeued::Deliver(_)
            ));
        }
    }

    #[test]
    fn codel_marks_instead_of_dropping_with_ecn() {
        let mut q = Codel::new(u64::MAX, true);
        for i in 0..300u64 {
            let _ = q.enqueue(SimTime::from_millis(i), ect_pkt(1500));
        }
        let mut marked = 0;
        for i in 0..300u64 {
            match q.dequeue(SimTime::from_millis(400 + i)) {
                Dequeued::Marked(p) => {
                    assert!(p.is_ce());
                    marked += 1;
                }
                Dequeued::Empty => break,
                _ => {}
            }
        }
        assert!(marked > 0, "CoDel+ECN never CE-marked");
    }

    #[test]
    fn pie_tick_raises_probability_under_standing_queue() {
        let mut q = Pie::new(u64::MAX, Bandwidth::from_mbps(10), false, 3);
        // 250 KB backlog at 10 Mbps = 200 ms queueing delay >> 15 ms target.
        for _ in 0..167 {
            let _ = q.enqueue(SimTime::ZERO, pkt(1500));
        }
        // Burn through the burst allowance (150 ms / 15 ms = 10 ticks).
        for i in 0..30 {
            q.on_tick(SimTime::from_millis(15 * (i + 1)));
        }
        assert!(
            q.drop_probability() > 0.0,
            "PIE probability stayed zero under a standing queue"
        );
        let mut dropped = 0;
        for _ in 0..500 {
            if matches!(
                q.enqueue(SimTime::from_secs(1), pkt(1500)),
                Enqueued::Dropped(_)
            ) {
                dropped += 1;
            }
        }
        assert!(
            dropped > 0,
            "PIE never dropped at p={}",
            q.drop_probability()
        );
    }

    #[test]
    fn pie_probability_decays_when_queue_clears() {
        let mut q = Pie::new(u64::MAX, Bandwidth::from_mbps(10), false, 3);
        for _ in 0..167 {
            let _ = q.enqueue(SimTime::ZERO, pkt(1500));
        }
        for i in 0..30 {
            q.on_tick(SimTime::from_millis(15 * (i + 1)));
        }
        let peak = q.drop_probability();
        assert!(peak > 0.0);
        while !matches!(q.dequeue(SimTime::from_secs(1)), Dequeued::Empty) {}
        for i in 0..300 {
            q.on_tick(SimTime::from_secs(1) + SimDuration::from_millis(15 * (i + 1)));
        }
        assert!(
            q.drop_probability() < peak / 10.0,
            "PIE probability failed to decay: {} -> {}",
            peak,
            q.drop_probability()
        );
    }

    #[test]
    fn hard_buffer_cap_is_enforced_by_every_discipline() {
        let rate = Bandwidth::from_mbps(100);
        for kind in AqmKind::ALL {
            let mut q = kind.build(4500, rate, true, 42);
            let mut accepted = 0u64;
            for _ in 0..100 {
                match q.enqueue(SimTime::ZERO, ect_pkt(1500)) {
                    Enqueued::Dropped(_) => {}
                    _ => accepted += 1,
                }
                assert!(
                    q.queued_bytes() <= 4500,
                    "{:?} exceeded the hard buffer cap",
                    kind
                );
            }
            assert!(accepted >= 3, "{kind:?} accepted too few packets");
        }
    }
}
