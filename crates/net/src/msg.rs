//! The workspace-wide event message type.
//!
//! Every component in a ccsim network simulation exchanges [`Msg`] values:
//! packets in flight, or timer tokens a component scheduled for itself.
//! Timer *meaning* is private to each component; the engine only transports
//! the token. Cancellation is primarily real: the engine's cancellation
//! tokens (`Ctx::schedule_cancellable` / `Ctx::cancel`) unlink a pending
//! timer from the queue in O(1). The generation counter embedded here is
//! the second line of defense, guarding the one window tokens cannot —
//! an event already extracted into the current same-timestamp dispatch
//! batch when its owner re-arms — by letting the owner ignore the stale
//! generation on delivery.

use crate::packet::Packet;
use ccsim_sim::{SnapError, SnapReader, SnapWriter};

/// A timer token. The low bits conventionally encode the timer kind and the
/// high bits a generation counter, but the engine treats it as opaque.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TimerToken(pub u64);

impl TimerToken {
    /// Pack a timer kind and generation counter into one token.
    #[inline]
    pub const fn pack(kind: u16, generation: u64) -> TimerToken {
        TimerToken((generation << 16) | kind as u64)
    }

    /// The timer kind (low 16 bits).
    #[inline]
    pub const fn kind(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// The generation counter (high 48 bits).
    #[inline]
    pub const fn generation(self) -> u64 {
        self.0 >> 16
    }
}

/// The single message type flowing through the simulator.
#[derive(Copy, Clone, Debug)]
pub enum Msg {
    /// A packet arriving at a component (link, switch port, or endpoint).
    Packet(Packet),
    /// A timer the receiving component scheduled for itself.
    Timer(TimerToken),
}

impl Msg {
    /// Serialize for a checkpoint (timer-wheel entries carry `Msg`
    /// payloads, so the queue snapshot routes through this).
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            Msg::Packet(p) => {
                w.u8(0);
                p.save_state(w);
            }
            Msg::Timer(t) => {
                w.u8(1);
                w.u64(t.0);
            }
        }
    }

    /// Deserialize a message written by [`Msg::save_state`].
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Msg, SnapError> {
        match r.u8()? {
            0 => Ok(Msg::Packet(Packet::load_state(r)?)),
            1 => Ok(Msg::Timer(TimerToken(r.u64()?))),
            b => Err(SnapError::Corrupt(format!("msg tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trips() {
        let t = TimerToken::pack(7, 123_456);
        assert_eq!(t.kind(), 7);
        assert_eq!(t.generation(), 123_456);
    }

    #[test]
    fn token_kind_isolated_from_generation() {
        let t = TimerToken::pack(u16::MAX, 1);
        assert_eq!(t.kind(), u16::MAX);
        assert_eq!(t.generation(), 1);
        let t = TimerToken::pack(0, u64::MAX >> 16);
        assert_eq!(t.kind(), 0);
        assert_eq!(t.generation(), u64::MAX >> 16);
    }
}
