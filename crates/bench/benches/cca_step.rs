//! Per-ACK congestion-control cost: the tightest inner loop after the
//! event queue. Compares the three algorithms' `on_ack` paths.

use ccsim_cca::{make_cca, CcaKind};
use ccsim_sim::{Bandwidth, SimDuration, SimTime};
use ccsim_tcp::cc::AckSample;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn sample(i: u64) -> AckSample {
    AckSample {
        now: SimTime::from_micros(i * 50),
        rtt: Some(SimDuration::from_millis(20)),
        srtt: SimDuration::from_millis(20),
        min_rtt: SimDuration::from_millis(20),
        newly_acked: 1448,
        newly_lost: 0,
        delivered: i * 1448,
        prior_delivered: i.saturating_sub(30) * 1448,
        prior_in_flight: 45_000,
        in_flight: 43_552,
        delivery_rate: Some(Bandwidth::from_mbps(50)),
        interval: SimDuration::from_millis(20),
        is_app_limited: false,
        in_recovery: false,
        mss: 1448,
        cumulative_ack: i * 1448,
    }
}

fn bench_on_ack(c: &mut Criterion) {
    let mut g = c.benchmark_group("cca_on_ack");
    g.throughput(Throughput::Elements(10_000));
    for kind in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr] {
        g.bench_function(format!("{kind}_10k_acks"), |b| {
            b.iter_batched(
                || make_cca(kind, 1448, 7),
                |mut cca| {
                    for i in 0..10_000u64 {
                        cca.on_ack(&sample(i));
                    }
                    cca
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_on_ack);
criterion_main!(benches);
