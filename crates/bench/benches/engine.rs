//! Engine micro-benchmarks: event-queue operations and dispatch rate.
//!
//! The DESIGN.md performance budget assumes the engine sustains millions of
//! events per second; this bench tracks that number (decision D2).

use ccsim_sim::{Component, ComponentId, Ctx, EventQueue, SimDuration, SimTime, Simulator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k_fifo", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                let t = SimTime::from_millis(1);
                for i in 0..10_000u64 {
                    q.schedule(t, ComponentId::from_raw(0), i);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("schedule_pop_10k_interleaved", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                // Timer-wheel-ish workload: interleaved near/far deadlines.
                for i in 0..10_000u64 {
                    let t = SimTime::from_nanos((i * 7919) % 1_000_000);
                    q.schedule(t, ComponentId::from_raw(0), i);
                    if i % 2 == 0 {
                        q.pop();
                    }
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// A component that reschedules itself `n` times: measures raw dispatch.
struct Relay {
    remaining: u64,
}

impl Component<u64> for Relay {
    fn on_event(&mut self, _now: SimTime, _msg: u64, ctx: &mut Ctx<'_, u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_self(SimDuration::from_nanos(100), 0);
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("self_timer_100k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(0);
                let id = sim.add_component(Relay { remaining: 100_000 });
                sim.schedule(SimTime::ZERO, id, 0);
                sim
            },
            |mut sim| {
                sim.run();
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_dispatch);
criterion_main!(benches);
