//! Flight-recorder benchmarks: per-ACK recording cost (the hot-path tax a
//! traced run pays) and export throughput for both formats.

use ccsim_sim::{SimDuration, SimTime};
use ccsim_trace::{
    write_binary, write_jsonl, FlowRecorder, RetentionPolicy, RunTrace, TraceMeta, TraceRecord,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

const ACKS: u64 = 100_000;

fn recorder(policy: RetentionPolicy) -> FlowRecorder {
    FlowRecorder::new(0, policy, 4 * 1024 * 1024, 42)
}

/// Drive a recorder with a sawtooth cwnd (change on every ACK — the
/// worst case for on-change dedup) and a slowly-moving srtt.
fn drive(mut rec: FlowRecorder) -> FlowRecorder {
    for t in 0..ACKS {
        let cwnd = 10_000 + (t % 1_000) * 29;
        let srtt = SimDuration::from_nanos(20_000_000 + (t / 100) * 1_000);
        rec.on_ack(SimTime::from_nanos(t * 50_000), cwnd, cwnd / 2, srtt, 0);
    }
    rec
}

fn bench_recording(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_record");
    g.throughput(Throughput::Elements(ACKS));
    g.bench_function("on_ack_100k_keepall", |b| {
        b.iter_batched(
            || recorder(RetentionPolicy::KeepAll),
            drive,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("on_ack_100k_decimate16", |b| {
        b.iter_batched(
            || recorder(RetentionPolicy::Decimate(16)),
            drive,
            BatchSize::SmallInput,
        )
    });
    g.bench_function("on_ack_100k_reservoir4k", |b| {
        b.iter_batched(
            || recorder(RetentionPolicy::Reservoir(4_096)),
            drive,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_export(c: &mut Criterion) {
    let records: Vec<TraceRecord> = (0..100_000u64)
        .map(|t| TraceRecord::cwnd(SimTime::from_nanos(t * 1_000), (t % 64) as u32, t, t / 2))
        .collect();
    let trace = RunTrace::assemble(
        TraceMeta {
            scenario: "bench".into(),
            seed: 1,
            flows: 64,
        },
        vec![(records, 0, 0)],
    );

    let mut g = c.benchmark_group("trace_export");
    g.throughput(Throughput::Elements(trace.records.len() as u64));
    g.bench_function("binary_100k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(4 * 1024 * 1024);
            write_binary(&trace, &mut buf).unwrap();
            buf
        })
    });
    g.bench_function("jsonl_100k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(16 * 1024 * 1024);
            write_jsonl(&trace, &mut buf).unwrap();
            buf
        })
    });
    g.finish();
}

criterion_group!(benches, bench_recording, bench_export);
criterion_main!(benches);
