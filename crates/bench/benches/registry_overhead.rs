//! Observability-overhead benchmarks: the cost of running with metrics
//! attached, and the raw per-operation cost of the registry primitives.
//!
//! `observed_run/plain` vs `observed_run/observed` is the headline: the
//! same quickstart-sized scenario through `run` and `run_observed`. The
//! observed run adds an inlined per-event class count, a histogram sample
//! per packet arrival, and a handful of counters on the TCP slow paths —
//! the two times should agree to well under 2%.

use ccsim_cca::CcaKind;
use ccsim_core::{run, run_observed, FlowGroup, Scenario};
use ccsim_sim::SimDuration;
use ccsim_telemetry::{Counter, Histogram};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// The README quickstart scenario, shortened: 10 Reno flows, 3 s simulated.
fn quickstart() -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("quickstart")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            10,
            SimDuration::from_millis(20),
        )])
        .seed(1);
    s.start_jitter = SimDuration::from_millis(200);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(2);
    s.convergence = None;
    s
}

fn bench_observed_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("observed_run");
    g.sample_size(10);
    let s = quickstart();
    g.bench_function("plain", |b| b.iter(|| run(black_box(&s))));
    g.bench_function("observed", |b| b.iter(|| run_observed(black_box(&s))));
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("registry_primitives");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    let counter = Counter::new();
    g.bench_function("counter_inc_10k", |b| {
        b.iter(|| {
            for _ in 0..N {
                counter.inc();
            }
            black_box(counter.get())
        })
    });
    let hist = Histogram::new();
    g.bench_function("histogram_record_10k", |b| {
        b.iter(|| {
            for v in 0..N {
                hist.record(black_box(v * 131));
            }
            black_box(hist.count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_observed_run, bench_primitives);
criterion_main!(benches);
