//! AQM discipline micro-benchmark: packets through a saturated link under
//! each queue discipline, plus the cost of the [`AqmQueue`] trait seam
//! itself.
//!
//! The `droptail_inline` / `droptail_boxed` pair is the one that matters
//! for regressions: `inline` is the link's built-in drop-tail fast path
//! (no AQM installed — what every legacy scenario runs), `boxed` is the
//! same discipline behind the `Box<dyn AqmQueue>` seam. The difference is
//! the price of the substitution point; it is expected (and CI-tracked by
//! eyeball, not assertion) to stay under ~2%.
//!
//! [`AqmQueue`]: ccsim_net::aqm::AqmQueue

use ccsim_net::aqm::AqmKind;
use ccsim_net::link::{Link, NextHop};
use ccsim_net::msg::Msg;
use ccsim_net::packet::{FlowId, Packet};
use ccsim_sim::{Bandwidth, Component, Ctx, SimDuration, SimTime, Simulator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

/// Swallows every packet.
struct Blackhole;

impl Component<Msg> for Blackhole {
    fn on_event(&mut self, _now: SimTime, _msg: Msg, _ctx: &mut Ctx<'_, Msg>) {}
}

const PKTS: u64 = 50_000;
const RATE: Bandwidth = Bandwidth::from_gbps(10);
const BUFFER: u64 = 256 * 1500; // shallow enough that admission decisions fire

fn saturated_link(aqm: Option<AqmKind>) -> Simulator<Msg> {
    let mut sim = Simulator::new(0);
    let sink = sim.add_component(Blackhole);
    let mut link = Link::new(RATE, SimDuration::ZERO, BUFFER, NextHop::ToPacketDst);
    if let Some(kind) = aqm {
        link.set_aqm(kind.build(BUFFER, RATE, false, 42));
    }
    let link = sim.add_component(link);
    // A storm of packets from 100 flows, arriving faster than line rate.
    for i in 0..PKTS {
        let p = Packet::data(FlowId((i % 100) as u32), sink, 0, 1448, SimTime::ZERO);
        sim.schedule(SimTime::from_nanos(i * 500), link, Msg::Packet(p));
    }
    sim
}

fn bench_aqm(c: &mut Criterion) {
    let mut g = c.benchmark_group("aqm_enqueue");
    g.throughput(Throughput::Elements(PKTS));
    let cases: [(&str, Option<AqmKind>); 5] = [
        ("droptail_inline", None),
        ("droptail_boxed", Some(AqmKind::DropTail)),
        ("red", Some(AqmKind::Red)),
        ("codel", Some(AqmKind::Codel)),
        ("pie", Some(AqmKind::Pie)),
    ];
    for (name, aqm) in cases {
        g.bench_function(name, |b| {
            b.iter_batched(
                || saturated_link(aqm),
                |mut sim| {
                    sim.run();
                    sim
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aqm);
criterion_main!(benches);
