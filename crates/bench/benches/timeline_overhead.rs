//! Timeline-sampler overhead benchmark: the cost of running with the
//! `ccsim-timeline` windowed sampler attached versus without.
//!
//! `timeline_run/off` vs `timeline_run/on` is the headline pair: the
//! same quickstart-sized observed run bare and with the default sampler
//! (1 s windows). The sampler only reads the runner's slice snapshots —
//! it never touches the event loop — so the cost is one fold per flow
//! and link per slice boundary, and the two times must agree to under
//! 2%, the budget the CI `timeline` job gates on. `timeline_run/w100ms`
//! bounds an aggressive 100 ms window (10× the fold rate).

use ccsim_cca::CcaKind;
use ccsim_core::{try_run_observed_with, FlowGroup, ObserveOptions, Scenario};
use ccsim_sim::SimDuration;
use ccsim_timeline::TimelineConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The README quickstart scenario, shortened: 10 Reno flows, 3 s simulated.
fn quickstart() -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("quickstart")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            10,
            SimDuration::from_millis(20),
        )])
        .seed(1);
    s.start_jitter = SimDuration::from_millis(200);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(2);
    s.convergence = None;
    s
}

fn observed(scenario: &Scenario, options: ObserveOptions) -> u64 {
    try_run_observed_with(scenario, options, |_| {})
        .expect("quickstart scenario runs clean")
        .outcome
        .events_processed
}

fn bench_timeline_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeline_run");
    g.sample_size(10);
    let s = quickstart();
    g.bench_function("off", |b| {
        b.iter(|| observed(black_box(&s), ObserveOptions::default()))
    });
    g.bench_function("on", |b| {
        b.iter(|| observed(black_box(&s), ObserveOptions::timelined()))
    });
    g.bench_function("w100ms", |b| {
        b.iter(|| {
            observed(
                black_box(&s),
                ObserveOptions {
                    timeline: Some(TimelineConfig {
                        window: SimDuration::from_millis(100),
                        ..TimelineConfig::default()
                    }),
                    ..ObserveOptions::default()
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_timeline_run);
criterion_main!(benches);
