//! Bottleneck-link micro-benchmark: packets through a saturated drop-tail
//! queue (the hot path of every CoreScale experiment).

use ccsim_net::link::{Link, NextHop};
use ccsim_net::msg::Msg;
use ccsim_net::packet::{FlowId, Packet};
use ccsim_sim::{Bandwidth, Component, Ctx, SimDuration, SimTime, Simulator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

/// Swallows every packet.
struct Blackhole;

impl Component<Msg> for Blackhole {
    fn on_event(&mut self, _now: SimTime, _msg: Msg, _ctx: &mut Ctx<'_, Msg>) {}
}

fn saturated_link(pkts: u64, buffer: u64) -> Simulator<Msg> {
    let mut sim = Simulator::new(0);
    let sink = sim.add_component(Blackhole);
    let link = sim.add_component(Link::new(
        Bandwidth::from_gbps(10),
        SimDuration::ZERO,
        buffer,
        NextHop::ToPacketDst,
    ));
    // A storm of packets from 100 flows, arriving faster than line rate.
    for i in 0..pkts {
        let p = Packet::data(FlowId((i % 100) as u32), sink, 0, 1448, SimTime::ZERO);
        sim.schedule(SimTime::from_nanos(i * 500), link, Msg::Packet(p));
    }
    sim
}

fn bench_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("link");
    g.throughput(Throughput::Elements(50_000));
    // Large buffer: everything queues and drains (no drops).
    g.bench_function("50k_pkts_no_drops", |b| {
        b.iter_batched(
            || saturated_link(50_000, u64::MAX),
            |mut sim| {
                sim.run();
                sim
            },
            BatchSize::SmallInput,
        )
    });
    // Tiny buffer: the drop path dominates.
    g.bench_function("50k_pkts_heavy_drops", |b| {
        b.iter_batched(
            || saturated_link(50_000, 64 * 1500),
            |mut sim| {
                sim.run();
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_link);
criterion_main!(benches);
