//! Profiler-overhead benchmark: the cost of running with the
//! `ccsim-prof` event-attribution profiler attached versus without.
//!
//! `prof_run/off` vs `prof_run/on` is the headline pair: the same
//! quickstart-sized observed run with profiling disabled and enabled at
//! the default stride. The enabled path adds one `u8` class-table lookup
//! plus two array increments per dispatched event and one `Instant::now()`
//! per stride (1024 events), so the two times must agree to under 2% —
//! the budget the CI `profile` job gates on. `prof_run/stride64` bounds
//! the cost of an aggressive sampling stride.

use ccsim_cca::CcaKind;
use ccsim_core::{try_run_observed_with, FlowGroup, ObserveOptions, Scenario};
use ccsim_sim::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The README quickstart scenario, shortened: 10 Reno flows, 3 s simulated.
fn quickstart() -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("quickstart")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            10,
            SimDuration::from_millis(20),
        )])
        .seed(1);
    s.start_jitter = SimDuration::from_millis(200);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(2);
    s.convergence = None;
    s
}

fn observed(scenario: &Scenario, options: ObserveOptions) -> u64 {
    try_run_observed_with(scenario, options, |_| {})
        .expect("quickstart scenario runs clean")
        .outcome
        .events_processed
}

fn bench_prof_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("prof_run");
    g.sample_size(10);
    let s = quickstart();
    g.bench_function("off", |b| {
        b.iter(|| observed(black_box(&s), ObserveOptions::default()))
    });
    g.bench_function("on", |b| {
        b.iter(|| observed(black_box(&s), ObserveOptions::profiled()))
    });
    g.bench_function("stride64", |b| {
        b.iter(|| {
            observed(
                black_box(&s),
                ObserveOptions {
                    profile: true,
                    profile_stride: 64,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_prof_run);
criterion_main!(benches);
