//! Watchdog-overhead benchmark: the cost of running with every-slice
//! invariant checks versus none.
//!
//! `watchdog_run/off` vs `watchdog_run/on` is the headline pair: the
//! same quickstart-sized scenario with the watchdog disabled and with
//! every-slice checks. A check pass reads a handful of link counters and
//! two fields per sender — O(flows) work once per simulated second
//! against millions of engine events — so the two times should agree to
//! well under 2%. `watchdog_run/strided` (every 5th slice) bounds the
//! marginal cost of the stride knob.

use ccsim_cca::CcaKind;
use ccsim_core::{run, FlowGroup, Scenario};
use ccsim_fault::WatchdogConfig;
use ccsim_sim::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The README quickstart scenario, shortened: 10 Reno flows, 3 s simulated.
fn quickstart() -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("quickstart")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            10,
            SimDuration::from_millis(20),
        )])
        .seed(1);
    s.start_jitter = SimDuration::from_millis(200);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(2);
    s.convergence = None;
    s
}

fn bench_watchdog_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("watchdog_run");
    g.sample_size(10);
    let off = quickstart();
    let on = quickstart().watched(WatchdogConfig::every_slice());
    let strided = quickstart().watched(WatchdogConfig::every_n(5));
    g.bench_function("off", |b| b.iter(|| run(black_box(&off))));
    g.bench_function("on", |b| b.iter(|| run(black_box(&on))));
    g.bench_function("strided", |b| b.iter(|| run(black_box(&strided))));
    g.finish();
}

criterion_group!(benches, bench_watchdog_run);
criterion_main!(benches);
