//! Windowed min/max filter benchmark (BBR runs one per flow, updated on
//! every delivery-rate sample).

use ccsim_cca::WindowedMax;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn bench_windowed_max(c: &mut Criterion) {
    let mut g = c.benchmark_group("windowed_max");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("update_100k_noisy", |b| {
        b.iter_batched(
            WindowedMax::new,
            |mut f| {
                for t in 0..100_000u64 {
                    // Pseudo-noisy bandwidth samples around 1e6.
                    let v = 1_000_000 + ((t.wrapping_mul(2654435761)) % 200_000);
                    f.update(10, t / 100, v);
                }
                f
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("update_100k_decaying", |b| {
        b.iter_batched(
            WindowedMax::new,
            |mut f| {
                for t in 0..100_000u64 {
                    let v = 2_000_000u64.saturating_sub(t * 10);
                    f.update(10, t / 100, v);
                }
                f
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_windowed_max);
criterion_main!(benches);
