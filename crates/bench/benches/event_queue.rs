//! Event-queue micro-benchmark: the tiered timer wheel ([`EventQueue`])
//! against the reference binary heap ([`HeapQueue`]) it replaced, under
//! the hold-pattern churn that dominates CoreScale runs — pop one event,
//! schedule the next — at a realistic pending count and delay mix, plus
//! the cancel-and-rearm pattern the TCP timers use.
//!
//! The wheel's win is O(1) schedule/cancel versus the heap's O(log n)
//! sift; `BENCH_perf.json` records the end-to-end consequence.

use ccsim_net::msg::{Msg, TimerToken};
use ccsim_sim::{ComponentId, EventQueue, HeapQueue, SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

/// CoreScale-like delay mix: mostly ~µs serializations and sub-ms
/// deliveries, some RTT-scale ACK clocks, a tail of RTO-scale rearms.
fn delay(i: u64) -> SimDuration {
    match i % 16 {
        0..=7 => SimDuration::from_nanos(1_200 + (i % 977)),
        8..=12 => SimDuration::from_micros(40 + (i % 613)),
        13..=14 => SimDuration::from_millis(1 + (i % 7)),
        _ => SimDuration::from_millis(200 + (i % 50)),
    }
}

const PENDING: u64 = 30_000;
const OPS: u64 = 100_000;

fn msg() -> Msg {
    Msg::Timer(TimerToken::pack(1, 7))
}

fn seeded_wheel() -> EventQueue<Msg> {
    let mut q = EventQueue::new();
    for i in 0..PENDING {
        q.schedule(SimTime::ZERO + delay(i), ComponentId::from_raw(0), msg());
    }
    q
}

fn seeded_heap() -> HeapQueue<Msg> {
    let mut q = HeapQueue::new();
    for i in 0..PENDING {
        q.schedule(SimTime::ZERO + delay(i), ComponentId::from_raw(0), msg());
    }
    q
}

fn bench_hold_pattern(c: &mut Criterion) {
    let dst = ComponentId::from_raw(0);
    let mut g = c.benchmark_group("event_queue/hold");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("wheel_pop_push", |b| {
        b.iter_batched(
            seeded_wheel,
            |mut q| {
                for i in 0..OPS {
                    let e = q.pop().unwrap();
                    q.schedule(e.time + delay(i), dst, msg());
                }
                q
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("heap_pop_push", |b| {
        b.iter_batched(
            seeded_heap,
            |mut q| {
                for i in 0..OPS {
                    let e = q.pop().unwrap();
                    q.schedule(e.time + delay(i), dst, msg());
                }
                q
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cancel_rearm(c: &mut Criterion) {
    // The RTO/delayed-ACK pattern: schedule cancellable, cancel, rearm —
    // the heap can only tombstone (pop later); the wheel unlinks in O(1).
    let dst = ComponentId::from_raw(0);
    let mut g = c.benchmark_group("event_queue/cancel_rearm");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("wheel", |b| {
        b.iter_batched(
            seeded_wheel,
            |mut q| {
                let mut now = SimTime::ZERO;
                let mut tok = q.schedule_cancellable(now + delay(0), dst, msg());
                for i in 0..OPS {
                    let e = q.pop().unwrap();
                    now = e.time;
                    q.cancel(tok);
                    tok = q.schedule_cancellable(now + delay(i), dst, msg());
                    q.schedule(now + delay(i.wrapping_mul(7)), dst, msg());
                }
                q
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("heap", |b| {
        b.iter_batched(
            seeded_heap,
            |mut q| {
                let mut now = SimTime::ZERO;
                let mut tok = q.schedule_cancellable(now + delay(0), dst, msg());
                for i in 0..OPS {
                    let e = q.pop().unwrap();
                    now = e.time;
                    q.cancel(tok);
                    tok = q.schedule_cancellable(now + delay(i), dst, msg());
                    q.schedule(now + delay(i.wrapping_mul(7)), dst, msg());
                }
                q
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_batch_extraction(c: &mut Criterion) {
    // Same-timestamp bursts (ACK fan-out, synchronized drops): the
    // engine's dispatch loop pulls these with one batch call.
    let dst = ComponentId::from_raw(0);
    let seed_bursty_wheel = || {
        let mut q: EventQueue<Msg> = EventQueue::new();
        for i in 0..PENDING {
            // 16-way timestamp collisions.
            let t = SimTime::ZERO + delay(i / 16);
            q.schedule(t, dst, msg());
        }
        q
    };
    let seed_bursty_heap = || {
        let mut q: HeapQueue<Msg> = HeapQueue::new();
        for i in 0..PENDING {
            let t = SimTime::ZERO + delay(i / 16);
            q.schedule(t, dst, msg());
        }
        q
    };
    let mut g = c.benchmark_group("event_queue/batch");
    g.throughput(Throughput::Elements(PENDING));
    g.bench_function("wheel_take_head_batch", |b| {
        b.iter_batched(
            seed_bursty_wheel,
            |mut q| {
                let mut out = std::collections::VecDeque::new();
                let mut n = 0;
                while q.take_head_batch(&mut out) > 0 {
                    n += out.len();
                    out.clear();
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("heap_take_head_batch", |b| {
        b.iter_batched(
            seed_bursty_heap,
            |mut q| {
                let mut out = std::collections::VecDeque::new();
                let mut n = 0;
                while q.take_head_batch(&mut out) > 0 {
                    n += out.len();
                    out.clear();
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hold_pattern,
    bench_cancel_rearm,
    bench_batch_extraction
);
criterion_main!(benches);
