//! DESIGN.md ablation benches.
//!
//! * **D5 / event economy** — the netem delay folded into endpoint
//!   scheduling vs modeled as an explicit DelayLine hop: measures the
//!   event-count cost of the extra hop that the default topology elides.
//! * **D4 — delayed ACKs** — per-packet cost with delayed ACKs on
//!   (default) is also implicitly covered by end_to_end; here we measure
//!   the queue-side effect of ACK-every-segment vs every-2-segments by
//!   doubling ACK traffic through a relay hop.

use ccsim_net::delay::{DelayLine, DelayNext};
use ccsim_net::msg::Msg;
use ccsim_net::packet::{FlowId, Packet};
use ccsim_sim::{Component, Ctx, SimDuration, SimTime, Simulator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

struct Counter {
    received: u64,
}

impl Component<Msg> for Counter {
    fn on_event(&mut self, _now: SimTime, _msg: Msg, _ctx: &mut Ctx<'_, Msg>) {
        self.received += 1;
    }
}

/// Deliver 100k packets either directly (scheduled with the delay baked in)
/// or through an explicit DelayLine component.
fn run_direct(pkts: u64) -> u64 {
    let mut sim = Simulator::new(0);
    let sink = sim.add_component(Counter { received: 0 });
    for i in 0..pkts {
        let p = Packet::data(FlowId(0), sink, 0, 1448, SimTime::ZERO);
        sim.schedule(
            SimTime::from_nanos(i * 100) + SimDuration::from_millis(20),
            sink,
            Msg::Packet(p),
        );
    }
    sim.run();
    sim.events_processed()
}

fn run_via_delayline(pkts: u64) -> u64 {
    let mut sim = Simulator::new(0);
    let sink = sim.add_component(Counter { received: 0 });
    let dl = sim.add_component(DelayLine::new(
        SimDuration::from_millis(20),
        DelayNext::ToPacketDst,
    ));
    for i in 0..pkts {
        let p = Packet::data(FlowId(0), sink, 0, 1448, SimTime::ZERO);
        sim.schedule(SimTime::from_nanos(i * 100), dl, Msg::Packet(p));
    }
    sim.run();
    sim.events_processed()
}

fn bench_delay_modeling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_delay_modeling");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("delay_folded_into_schedule", |b| {
        b.iter_batched(|| (), |()| run_direct(100_000), BatchSize::SmallInput)
    });
    g.bench_function("delay_as_component_hop", |b| {
        b.iter_batched(
            || (),
            |()| run_via_delayline(100_000),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_delay_modeling);
criterion_main!(benches);
