//! End-to-end scenario benchmarks: complete (scaled-down) experiment runs
//! through the public harness API. These are the numbers that predict how
//! long the full figure grids take.

use ccsim_cca::CcaKind;
use ccsim_core::{run, FlowGroup, Scenario};
use ccsim_sim::{Bandwidth, SimDuration};
use criterion::{criterion_group, criterion_main, Criterion};

/// A short EdgeScale run: N reno flows, 3 s simulated.
fn edge(cca: CcaKind, n: u32) -> Scenario {
    let mut s = Scenario::edge_scale()
        .flows(vec![FlowGroup::new(cca, n, SimDuration::from_millis(20))])
        .seed(1);
    s.start_jitter = SimDuration::from_millis(200);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(2);
    s.convergence = None;
    s
}

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for (label, cca) in [
        ("reno", CcaKind::Reno),
        ("cubic", CcaKind::Cubic),
        ("bbr", CcaKind::Bbr),
    ] {
        g.bench_function(format!("edge_{label}_10flows_3s"), |b| {
            b.iter(|| run(&edge(cca, 10)))
        });
    }
    // A mini-CoreScale: 1 Gbps shared by 100 flows, same per-flow share as
    // 10 Gbps / 1000.
    g.bench_function("mini_core_reno_100flows_3s", |b| {
        let mut s = edge(CcaKind::Reno, 100);
        s.bottleneck = Bandwidth::from_gbps(1);
        s.buffer_bytes = 25_000_000;
        b.iter(|| run(&s))
    });
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
