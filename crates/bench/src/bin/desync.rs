//! Extension: loss-event synchronization across flows.
//!
//! Appenzeller et al. (cited in §2) showed NewReno flows *desynchronize*
//! at scale; the paper hypothesizes the same desynchronization explains
//! BBR's fairness collapse (Finding 5 discussion). This binary measures
//! the synchronization index (see `ccsim-analysis::sync`) of congestion
//! events directly from the senders' tcpprobe-equivalent logs, comparing
//! few-flow EdgeScale populations against many-flow CoreScale ones.

use ccsim_analysis::synchronization_index;
use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::build::BuiltNetwork;
use ccsim_core::report::render_table;
use ccsim_core::{FlowGroup, Scenario};
use ccsim_net::link::Link;
use ccsim_sim::{SimDuration, SimTime};
use ccsim_tcp::sender::Sender;

/// Run `count` flows of `cca` and return (sync index, loss rate).
fn measure(skeleton: Scenario, cca: CcaKind, count: u32, rtt_ms: u64) -> (Option<f64>, f64) {
    let mut s = skeleton.flows(vec![FlowGroup::new(
        cca,
        count,
        SimDuration::from_millis(rtt_ms),
    )]);
    s.convergence = None;
    let mut net = BuiltNetwork::build(&s);
    let warmup_end = SimTime::ZERO + s.warmup;
    net.sim.run_until(warmup_end);
    net.sim.component_mut::<Link>(net.link).reset_stats();
    let end = warmup_end + s.duration;
    net.sim.run_until(end);

    // Congestion-event trains per flow, window-scoped.
    let events: Vec<Vec<SimTime>> = net
        .senders
        .iter()
        .map(|&id| {
            net.sim
                .component::<Sender>(id)
                .stats()
                .congestion_event_log
                .iter()
                .copied()
                .filter(|&t| t >= warmup_end)
                .collect()
        })
        .collect();
    // Bin width: one base RTT — events in the same RTT are "synchronized".
    let idx = synchronization_index(&events, warmup_end, end, SimDuration::from_millis(rtt_ms));
    let loss = net.sim.component::<Link>(net.link).stats().loss_rate();
    (idx, loss)
}

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("desync");
    let rtt = 20;
    let mut rows = Vec::new();
    for cca in [CcaKind::Reno, CcaKind::Bbr] {
        for &count in &opts.config.edge_counts {
            let (idx, loss) = measure(opts.config.edge(), cca, count, rtt);
            rows.push(vec![
                "EdgeScale".into(),
                cca.to_string(),
                count.to_string(),
                idx.map_or("-".into(), |x| format!("{x:.3}")),
                format!("{:.3}%", loss * 100.0),
            ]);
        }
        for &count in &opts.config.core_counts {
            let (idx, loss) = measure(opts.config.core(), cca, count, rtt);
            rows.push(vec![
                "CoreScale".into(),
                cca.to_string(),
                count.to_string(),
                idx.map_or("-".into(), |x| format!("{x:.3}")),
                format!("{:.3}%", loss * 100.0),
            ]);
        }
    }
    section(
        "Extension — loss-event synchronization (bin = 1 RTT, 20 ms)",
        &render_table(&["setting", "cca", "flows", "sync index", "loss"], &rows),
    );
    println!(
        "\nAppenzeller: NewReno desynchronizes as flow count grows (index\n\
         falls); the paper hypothesizes the same for BBR at scale.",
    );
    sw.finish();
}
