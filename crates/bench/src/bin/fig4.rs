//! Regenerate **Figure 4**: BBR intra-CCA fairness (JFI) vs flow count at
//! 20/100/200 ms RTTs, in CoreScale (a) and EdgeScale (b).

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::experiments::intra;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("fig4");
    let rows = intra::run_grid(&opts.config, CcaKind::Bbr);
    section(
        "Figure 4 — BBR intra-CCA fairness (JFI)",
        &intra::render(&rows),
    );
    println!(
        "\npaper: JFI as low as 0.4 in CoreScale (20/100 ms), milder\n\
         unfairness (>10 flows, JFI down to 0.7) in EdgeScale; past work's\n\
         reference line sits at 0.99.",
    );
    sw.finish();
}
