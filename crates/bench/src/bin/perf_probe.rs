//! Engine-throughput probe with progress reporting: runs one cell slice by
//! slice and prints events/slice — the tool for calibrating horizons and
//! spotting runaway event generation.

use ccsim_cca::CcaKind;
use ccsim_core::{BuiltNetwork, FlowGroup, Scenario};
use ccsim_sim::{Bandwidth, SimDuration, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gbps: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let flows: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let cca: CcaKind = args
        .get(3)
        .map(|s| s.parse().expect("cca"))
        .unwrap_or(CcaKind::Reno);

    let mut s = Scenario::core_scale()
        .named("probe")
        .flows(vec![FlowGroup::new(
            cca,
            flows,
            SimDuration::from_millis(20),
        )])
        .seed(1);
    s.bottleneck = Bandwidth::from_gbps(gbps);
    s.buffer_bytes = (gbps * 25_000_000).max(1_000_000); // 1 BDP @ 200ms
    s.start_jitter = SimDuration::from_millis(500);

    let mut net = BuiltNetwork::build(&s);
    let t0 = std::time::Instant::now();
    let mut last_events = 0u64;
    for slice in 1..=(secs * 10) {
        let until = SimTime::from_millis(slice * 100);
        net.sim.run_until(until);
        let ev = net.sim.events_processed();
        let mut pkts = 0u64;
        let mut acks = 0u64;
        let mut rtx = 0u64;
        let mut rtos = 0u64;
        let mut recov = 0u64;
        for &id in &net.senders {
            let st = net.sim.component::<ccsim_tcp::Sender>(id).stats();
            pkts += st.data_pkts_sent;
            acks += st.acks_received;
            rtx += st.retransmits;
            rtos += st.rtos;
            recov += st.fast_recoveries;
        }
        eprintln!(
            "sim {:>6}ms wall {:>6.1}s events {:>12} (+{:>10}) pending {:>8} pkts {} acks {} rtx {} rtos {} recov {}",
            slice * 100,
            t0.elapsed().as_secs_f64(),
            ev,
            ev - last_events,
            net.sim.events_pending(),
            pkts, acks, rtx, rtos, recov
        );
        last_events = ev;
        if t0.elapsed().as_secs_f64() > 60.0 {
            eprintln!("aborting: too slow");
            break;
        }
    }
    let delivered: u64 = net.per_flow_delivered().iter().sum();
    eprintln!(
        "total delivered {:.1} MB, rate {:.2}M ev/s",
        delivered as f64 / 1e6,
        net.sim.events_processed() as f64 / t0.elapsed().as_secs_f64() / 1e6
    );
}
