//! Microbench isolating event-queue cost from dispatch cost: hold-pattern
//! churn (pop one, push one) at CoreScale-like pending counts and delay
//! mix, wheel vs reference heap, with a `ccsim-net` sized payload.
//!
//! Usage: queue_probe [pending] [ops]

use ccsim_net::msg::Msg;
use ccsim_sim::{ComponentId, EventQueue, HeapQueue, SimDuration, SimTime};
use std::time::Instant;

fn delay(i: u64) -> SimDuration {
    // Rough CoreScale mix: mostly ~µs serializations and sub-ms deliveries,
    // some RTT-scale ACK clocks, a tail of RTO-scale rearms.
    match i % 16 {
        0..=7 => SimDuration::from_nanos(1_200 + (i % 977)),
        8..=12 => SimDuration::from_micros(40 + (i % 613)),
        13..=14 => SimDuration::from_millis(1 + (i % 7)),
        _ => SimDuration::from_millis(200 + (i % 50)),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pending: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let ops: u64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000_000);
    let dst = ComponentId::from_raw(0);
    let msg = Msg::Timer(ccsim_net::msg::TimerToken::pack(1, 7));
    println!(
        "payload: Msg={}B, pending={pending}, ops={ops}",
        std::mem::size_of::<Msg>()
    );

    let mut wheel: EventQueue<Msg> = EventQueue::new();
    let mut now = SimTime::ZERO;
    for i in 0..pending {
        wheel.schedule(now + delay(i), dst, msg);
    }
    let t0 = Instant::now();
    for i in 0..ops {
        let e = wheel.pop().unwrap();
        now = e.time;
        wheel.schedule(now + delay(i), dst, msg);
    }
    let dt = t0.elapsed();
    println!(
        "wheel: {:7.1} ns/op  ({:.2}M ops/s)  end={now}",
        dt.as_nanos() as f64 / ops as f64,
        ops as f64 / dt.as_secs_f64() / 1e6
    );

    let mut heap: HeapQueue<Msg> = HeapQueue::new();
    let mut now = SimTime::ZERO;
    for i in 0..pending {
        heap.schedule(now + delay(i), dst, msg);
    }
    let t0 = Instant::now();
    for i in 0..ops {
        let e = heap.pop().unwrap();
        now = e.time;
        heap.schedule(now + delay(i), dst, msg);
    }
    let dt = t0.elapsed();
    println!(
        "heap:  {:7.1} ns/op  ({:.2}M ops/s)  end={now}",
        dt.as_nanos() as f64 / ops as f64,
        ops as f64 / dt.as_secs_f64() / 1e6
    );
}
