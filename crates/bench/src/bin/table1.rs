//! Regenerate **Table 1**: the best-fit Mathis constant `C` derived with
//! `p` = packet-loss rate vs `p` = CWND-halving rate, per setting and
//! flow count.

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_core::experiments::mathis;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("table1");
    let rows = mathis::run_grid(&opts.config);
    section(
        "Table 1 — Mathis constant C by p-interpretation",
        &mathis::render(&rows),
    );
    println!(
        "\npaper: C from packet loss varies with setting & flow count\n\
         (1.78 edge; 3.95/3.64/3.24 core) while C from CWND halving stays\n\
         ~1.4 everywhere.",
    );
    sw.finish();
}
