//! Ablation/extension: router buffer sizing at scale.
//!
//! The paper sizes its buffers by the classic 1-BDP rule but cites
//! Appenzeller et al. (SIGCOMM 2004): when N flows desynchronize, a buffer
//! of `BDP/√N` suffices for high utilization. This sweep reproduces that
//! claim inside ccsim — an extension beyond the paper's own figures and a
//! check that the simulator captures flow (de)synchronization.

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::report::render_table;
use ccsim_core::{run, FlowGroup};
use ccsim_sim::SimDuration;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("ablation buffer");
    let rtt = SimDuration::from_millis(100);
    let mut rows = Vec::new();

    let count = *opts.config.core_counts.first().unwrap_or(&200);
    let skeleton = opts.config.core();
    // BDP at the base RTT (queueing excluded), the sizing rule's reference.
    let bdp = (skeleton.bottleneck.as_bytes_per_sec() * rtt.as_secs_f64()) as u64;
    let sqrt_n = (count as f64).sqrt();

    for (label, buffer) in [
        ("2.0 BDP", 2 * bdp),
        ("1.0 BDP", bdp),
        ("BDP/2", bdp / 2),
        ("BDP/sqrt(N)", (bdp as f64 / sqrt_n) as u64),
        ("BDP/(2 sqrt(N))", (bdp as f64 / (2.0 * sqrt_n)) as u64),
    ] {
        let mut s = skeleton
            .clone()
            .flows(vec![FlowGroup::new(CcaKind::Reno, count, rtt)]);
        s.buffer_bytes = buffer.max(10 * 1500);
        s.name = format!("buffer-{label}");
        let o = run(&s);
        rows.push(vec![
            label.to_string(),
            format!("{:.2} MB", s.buffer_bytes as f64 / 1e6),
            format!("{:.1}%", o.utilization() * 100.0),
            format!("{:.3}%", o.aggregate_loss_rate * 100.0),
            format!("{:.3}", o.jain_index().unwrap_or(0.0)),
            format!("{:.2}", o.drop_burstiness.unwrap_or(f64::NAN)),
        ]);
    }

    section(
        &format!(
            "Ablation — buffer sizing, {} NewReno flows @100 ms on {}",
            count, skeleton.bottleneck
        ),
        &render_table(
            &["buffer rule", "bytes", "util", "loss", "JFI", "burstiness"],
            &rows,
        ),
    );
    println!(
        "\nAppenzeller et al.: with many desynchronized flows, BDP/sqrt(N)\n\
         retains near-full utilization.",
    );
    sw.finish();
}
