//! Regenerate **Finding 4** (figure not shown in the paper): NewReno and
//! Cubic keep intra-CCA JFI > 0.99 even in CoreScale.

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::experiments::intra;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("finding4");
    let reno = intra::run_grid(&opts.config, CcaKind::Reno);
    section(
        "Finding 4 — NewReno intra-CCA fairness",
        &intra::render(&reno),
    );
    let cubic = intra::run_grid(&opts.config, CcaKind::Cubic);
    section(
        "Finding 4 — Cubic intra-CCA fairness",
        &intra::render(&cubic),
    );
    println!("\npaper: JFI > 0.99 for both, at every scale.",);
    sw.finish();
}
