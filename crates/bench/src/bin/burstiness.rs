//! Regenerate the **Finding 3 corroboration** (figure not shown in the
//! paper): Goh–Barabási burstiness of bottleneck drop trains.

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_core::experiments::mathis;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("burstiness");
    let rows = mathis::run_grid(&opts.config);
    section(
        "Finding 3 corroboration — queue-drop burstiness",
        &mathis::render(&rows),
    );
    println!(
        "\npaper: median burstiness ~0.2 in EdgeScale vs ~0.35 in CoreScale\n\
         — losses are burstier at scale, which is why one CWND halving\n\
         absorbs many drops.",
    );
    sw.finish();
}
