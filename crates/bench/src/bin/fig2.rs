//! Regenerate **Figure 2**: median Mathis prediction error per flow count,
//! under both interpretations of `p`, with EdgeScale reference values.

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_core::experiments::mathis;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("fig2");
    let rows = mathis::run_grid(&opts.config);
    section(
        "Figure 2 — Mathis median prediction error",
        &mathis::render(&rows),
    );
    println!("\nseries 'err (loss)' and 'err (halving)' are the figure's bars;");
    println!("EdgeScale rows are the figure's horizontal reference lines.");
    println!(
        "paper: <=10% error with CWND halving at scale, 45-55% with packet\n\
         loss; both <10% at the edge.",
    );
    sw.finish();
}
