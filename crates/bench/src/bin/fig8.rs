//! Regenerate **Figure 8**: N BBR vs N NewReno (a) and N BBR vs N Cubic
//! (b) — BBR's aggregate share (paper: up to 99.9%).

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::experiments::inter;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("fig8");
    let a = inter::run_grid(&opts.config, CcaKind::Bbr, CcaKind::Reno);
    section(
        "Figure 8a — BBR vs NewReno (equal counts)",
        &inter::render(&a),
    );
    let b = inter::run_grid(&opts.config, CcaKind::Bbr, CcaKind::Cubic);
    section(
        "Figure 8b — BBR vs Cubic (equal counts)",
        &inter::render(&b),
    );
    println!(
        "\npaper: BBR takes up to 99.9% of total throughput in CoreScale\n\
         against either loss-based CCA.",
    );
    sw.finish();
}
