//! Regenerate **Figure 7**: a single BBR flow against thousands of Cubic
//! flows (paper: ~40% share, as against NewReno).

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::experiments::single_bbr;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("fig7");
    let rows = single_bbr::run_grid(&opts.config, CcaKind::Cubic);
    section("Figure 7 — 1 BBR vs N Cubic", &single_bbr::render(&rows));
    println!("\npaper: ~40% BBR share regardless of the Cubic flow count.",);
    sw.finish();
}
