//! Regenerate **Figure 6**: a single BBR flow against thousands of
//! NewReno flows (paper: the BBR flow holds ~40% of total throughput
//! regardless of the competitor count — the Ware et al. model).

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::experiments::single_bbr;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("fig6");
    let rows = single_bbr::run_grid(&opts.config, CcaKind::Reno);
    section("Figure 6 — 1 BBR vs N NewReno", &single_bbr::render(&rows));
    println!(
        "\npaper: ~40% BBR share at every N, 'Home Link' reference ~40%;\n\
         at 5000 flows that is ~4 Gbps for one flow vs ~1.2 Mbps each for\n\
         everyone else.",
    );
    sw.finish();
}
