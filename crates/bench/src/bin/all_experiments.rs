//! Run every table and figure of the paper in one pass and emit an
//! EXPERIMENTS.md-ready report on stdout.
//!
//! ```sh
//! cargo run --release -p ccsim-bench --bin all_experiments            # scaled grid
//! cargo run --release -p ccsim-bench --bin all_experiments -- --scale paper
//! ```

use ccsim_bench::{parse_args, section, Stopwatch};
use ccsim_cca::CcaKind;
use ccsim_core::experiments::{inter, intra, mathis, single_bbr};

fn main() {
    let opts = parse_args();
    let total = Stopwatch::new();
    println!("# ccsim experiment report");
    println!(
        "\ngrid: core {:?}, edge {:?}, rtts {:?} ms, fidelity {:?}, seed {}{}",
        opts.config.core_counts,
        opts.config.edge_counts,
        opts.config.rtts_ms,
        opts.config.fidelity,
        opts.config.seed,
        if opts.paper_scale {
            " (paper scale)"
        } else {
            " (scaled-down counts; pass --scale paper for 1000/3000/5000)"
        }
    );

    let sw = Stopwatch::new();
    let mathis_rows = mathis::run_grid(&opts.config);
    section(
        "Table 1 + Figures 2 & 3 + burstiness — the Mathis model at scale",
        &mathis::render(&mathis_rows),
    );
    eprintln!("[mathis grid done in {:.1}s]", sw.secs());

    let sw = Stopwatch::new();
    let bbr_intra = intra::run_grid(&opts.config, CcaKind::Bbr);
    section(
        "Figure 4 — BBR intra-CCA fairness",
        &intra::render(&bbr_intra),
    );
    eprintln!("[fig4 done in {:.1}s]", sw.secs());

    let sw = Stopwatch::new();
    let reno_intra = intra::run_grid(&opts.config, CcaKind::Reno);
    section(
        "Finding 4 — NewReno intra-CCA fairness",
        &intra::render(&reno_intra),
    );
    let cubic_intra = intra::run_grid(&opts.config, CcaKind::Cubic);
    section(
        "Finding 4 — Cubic intra-CCA fairness",
        &intra::render(&cubic_intra),
    );
    eprintln!("[finding4 done in {:.1}s]", sw.secs());

    let sw = Stopwatch::new();
    let fig5 = inter::run_grid(&opts.config, CcaKind::Cubic, CcaKind::Reno);
    section("Figure 5 — Cubic vs NewReno", &inter::render(&fig5));
    eprintln!("[fig5 done in {:.1}s]", sw.secs());

    let sw = Stopwatch::new();
    let fig6 = single_bbr::run_grid(&opts.config, CcaKind::Reno);
    section("Figure 6 — 1 BBR vs N NewReno", &single_bbr::render(&fig6));
    let fig7 = single_bbr::run_grid(&opts.config, CcaKind::Cubic);
    section("Figure 7 — 1 BBR vs N Cubic", &single_bbr::render(&fig7));
    eprintln!("[fig6+fig7 done in {:.1}s]", sw.secs());

    let sw = Stopwatch::new();
    let fig8a = inter::run_grid(&opts.config, CcaKind::Bbr, CcaKind::Reno);
    section("Figure 8a — BBR vs NewReno", &inter::render(&fig8a));
    let fig8b = inter::run_grid(&opts.config, CcaKind::Bbr, CcaKind::Cubic);
    section("Figure 8b — BBR vs Cubic", &inter::render(&fig8b));
    eprintln!("[fig8 done in {:.1}s]", sw.secs());

    println!("\n---\ntotal wall-clock: {:.1}s", total.secs());
}
