//! Run every table and figure of the paper in one pass and emit an
//! EXPERIMENTS.md-ready report on stdout.
//!
//! ```sh
//! cargo run --release -p ccsim-bench --bin all_experiments            # scaled grid
//! cargo run --release -p ccsim-bench --bin all_experiments -- --scale paper
//! ```

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::experiments::{inter, intra, mathis, single_bbr};

fn main() {
    let opts = parse_args();
    let total = StageTimer::new("all experiments");
    println!("# ccsim experiment report");
    println!(
        "\ngrid: core {:?}, edge {:?}, rtts {:?} ms, fidelity {:?}, seed {}{}",
        opts.config.core_counts,
        opts.config.edge_counts,
        opts.config.rtts_ms,
        opts.config.fidelity,
        opts.config.seed,
        if opts.paper_scale {
            " (paper scale)"
        } else {
            " (scaled-down counts; pass --scale paper for 1000/3000/5000)"
        }
    );

    let sw = StageTimer::new("mathis grid");
    let mathis_rows = mathis::run_grid(&opts.config);
    section(
        "Table 1 + Figures 2 & 3 + burstiness — the Mathis model at scale",
        &mathis::render(&mathis_rows),
    );
    sw.finish();

    let sw = StageTimer::new("fig4");
    let bbr_intra = intra::run_grid(&opts.config, CcaKind::Bbr);
    section(
        "Figure 4 — BBR intra-CCA fairness",
        &intra::render(&bbr_intra),
    );
    sw.finish();

    let sw = StageTimer::new("finding4");
    let reno_intra = intra::run_grid(&opts.config, CcaKind::Reno);
    section(
        "Finding 4 — NewReno intra-CCA fairness",
        &intra::render(&reno_intra),
    );
    let cubic_intra = intra::run_grid(&opts.config, CcaKind::Cubic);
    section(
        "Finding 4 — Cubic intra-CCA fairness",
        &intra::render(&cubic_intra),
    );
    sw.finish();

    let sw = StageTimer::new("fig5");
    let fig5 = inter::run_grid(&opts.config, CcaKind::Cubic, CcaKind::Reno);
    section("Figure 5 — Cubic vs NewReno", &inter::render(&fig5));
    sw.finish();

    let sw = StageTimer::new("fig6+fig7");
    let fig6 = single_bbr::run_grid(&opts.config, CcaKind::Reno);
    section("Figure 6 — 1 BBR vs N NewReno", &single_bbr::render(&fig6));
    let fig7 = single_bbr::run_grid(&opts.config, CcaKind::Cubic);
    section("Figure 7 — 1 BBR vs N Cubic", &single_bbr::render(&fig7));
    sw.finish();

    let sw = StageTimer::new("fig8");
    let fig8a = inter::run_grid(&opts.config, CcaKind::Bbr, CcaKind::Reno);
    section("Figure 8a — BBR vs NewReno", &inter::render(&fig8a));
    let fig8b = inter::run_grid(&opts.config, CcaKind::Bbr, CcaKind::Cubic);
    section("Figure 8b — BBR vs Cubic", &inter::render(&fig8b));
    sw.finish();

    total.finish();
}
