//! Run every table and figure of the paper in one pass and emit an
//! EXPERIMENTS.md-ready report on stdout.
//!
//! ```sh
//! cargo run --release -p ccsim-bench --bin all_experiments            # scaled grid
//! cargo run --release -p ccsim-bench --bin all_experiments -- --scale paper
//! ```
//!
//! Every grid executes on the campaign worker pool
//! ([`ccsim_campaign::executor`]), so cells run in parallel with a live
//! aggregate progress line. Outcomes are identical to the old serial
//! path — results depend only on (configuration, seed). Set
//! `CCSIM_LEDGER=<path>` to additionally append every run to a campaign
//! ledger (then `ccsim campaign report`/`diff` work on the result).

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_campaign::executor::{run_scenarios, ExecutorOptions};
use ccsim_campaign::ledger::{LedgerEntry, LedgerWriter};
use ccsim_campaign::spec::Tolerances;
use ccsim_cca::CcaKind;
use ccsim_core::experiments::{inter, intra, mathis, single_bbr};
use ccsim_core::{RunOutcome, Scenario};
use ccsim_telemetry::CampaignProgress;
use std::path::Path;
use std::sync::Mutex;

/// Shared grid executor: campaign worker pool + optional ledger sink.
struct GridExec {
    opts: ExecutorOptions,
    ledger: Option<Mutex<LedgerWriter>>,
}

impl GridExec {
    fn new() -> GridExec {
        let ledger = std::env::var("CCSIM_LEDGER").ok().map(|path| {
            let w = LedgerWriter::create(
                Path::new(&path),
                "all_experiments",
                &Tolerances::default(),
                &[],
            )
            .unwrap_or_else(|e| panic!("cannot create ledger {path}: {e}"));
            eprintln!("[ledger: {path}]");
            Mutex::new(w)
        });
        GridExec {
            opts: ExecutorOptions::default(),
            ledger,
        }
    }

    /// Run one grid's scenarios on the pool; panic on any failed cell
    /// (matching the old serial `run_all` behavior).
    fn run(&self, label: &str, scenarios: &[Scenario]) -> Vec<RunOutcome> {
        let progress = CampaignProgress::new(label, scenarios.len());
        let results = run_scenarios(scenarios, &self.opts, |r| {
            let entry = LedgerEntry::from_result(r);
            if let Some(l) = &self.ledger {
                l.lock()
                    .unwrap()
                    .append(&entry)
                    .unwrap_or_else(|e| panic!("ledger write failed: {e}"));
            }
            progress.job_done(&entry.job, entry.events_processed, entry.ok());
        });
        progress.finish();
        results
            .into_iter()
            .map(|r| match r.run {
                Ok(obs) => obs.outcome,
                Err(e) => panic!("{} failed: {e}", r.job.name),
            })
            .collect()
    }
}

fn main() {
    let opts = parse_args();
    let exec = GridExec::new();
    let total = StageTimer::new("all experiments");
    println!("# ccsim experiment report");
    println!(
        "\ngrid: core {:?}, edge {:?}, rtts {:?} ms, fidelity {:?}, seed {}{}",
        opts.config.core_counts,
        opts.config.edge_counts,
        opts.config.rtts_ms,
        opts.config.fidelity,
        opts.config.seed,
        if opts.paper_scale {
            " (paper scale)"
        } else {
            " (scaled-down counts; pass --scale paper for 1000/3000/5000)"
        }
    );

    let sw = StageTimer::new("mathis grid");
    let mathis_rows = mathis::run_grid_with(&opts.config, |s| exec.run("mathis", s));
    section(
        "Table 1 + Figures 2 & 3 + burstiness — the Mathis model at scale",
        &mathis::render(&mathis_rows),
    );
    sw.finish();

    let sw = StageTimer::new("fig4");
    let bbr_intra = intra::run_grid_with(&opts.config, CcaKind::Bbr, |s| exec.run("fig4", s));
    section(
        "Figure 4 — BBR intra-CCA fairness",
        &intra::render(&bbr_intra),
    );
    sw.finish();

    let sw = StageTimer::new("finding4");
    let reno_intra = intra::run_grid_with(&opts.config, CcaKind::Reno, |s| {
        exec.run("finding4/reno", s)
    });
    section(
        "Finding 4 — NewReno intra-CCA fairness",
        &intra::render(&reno_intra),
    );
    let cubic_intra = intra::run_grid_with(&opts.config, CcaKind::Cubic, |s| {
        exec.run("finding4/cubic", s)
    });
    section(
        "Finding 4 — Cubic intra-CCA fairness",
        &intra::render(&cubic_intra),
    );
    sw.finish();

    let sw = StageTimer::new("fig5");
    let fig5 = inter::run_grid_with(&opts.config, CcaKind::Cubic, CcaKind::Reno, |s| {
        exec.run("fig5", s)
    });
    section("Figure 5 — Cubic vs NewReno", &inter::render(&fig5));
    sw.finish();

    let sw = StageTimer::new("fig6+fig7");
    let fig6 = single_bbr::run_grid_with(&opts.config, CcaKind::Reno, |s| exec.run("fig6", s));
    section("Figure 6 — 1 BBR vs N NewReno", &single_bbr::render(&fig6));
    let fig7 = single_bbr::run_grid_with(&opts.config, CcaKind::Cubic, |s| exec.run("fig7", s));
    section("Figure 7 — 1 BBR vs N Cubic", &single_bbr::render(&fig7));
    sw.finish();

    let sw = StageTimer::new("fig8");
    let fig8a = inter::run_grid_with(&opts.config, CcaKind::Bbr, CcaKind::Reno, |s| {
        exec.run("fig8a", s)
    });
    section("Figure 8a — BBR vs NewReno", &inter::render(&fig8a));
    let fig8b = inter::run_grid_with(&opts.config, CcaKind::Bbr, CcaKind::Cubic, |s| {
        exec.run("fig8b", s)
    });
    section("Figure 8b — BBR vs Cubic", &inter::render(&fig8b));
    sw.finish();

    total.finish();
}
