//! Temporary diagnostic: CoreScale-like cell with per-slice dump of the
//! highest-retransmit sender.

use ccsim_cca::CcaKind;
use ccsim_core::{BuiltNetwork, FlowGroup, Scenario};
use ccsim_sim::{Bandwidth, SimDuration, SimTime};

fn main() {
    let mut s = Scenario::core_scale()
        .named("debug")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            100,
            SimDuration::from_millis(20),
        )])
        .seed(1);
    s.bottleneck = Bandwidth::from_gbps(1);
    s.buffer_bytes = 25_000_000;
    s.start_jitter = SimDuration::from_millis(500);

    let mut net = BuiltNetwork::build(&s);
    let t0 = std::time::Instant::now();
    for slice in 1..=30u64 {
        net.sim.run_until(SimTime::from_millis(slice * 100));
        // Find the worst sender by retransmit count.
        let mut worst = 0usize;
        let mut worst_rtx = 0u64;
        for (i, &id) in net.senders.iter().enumerate() {
            let st = net.sim.component::<ccsim_tcp::Sender>(id).stats();
            if st.retransmits > worst_rtx {
                worst_rtx = st.retransmits;
                worst = i;
            }
        }
        let snd = net.sim.component::<ccsim_tcp::Sender>(net.senders[worst]);
        let st = snd.stats();
        eprintln!(
            "t={:>5}ms ev={:>10} | flow{} pkts={} rtx={} acks={} rtos={} recov={} | {}",
            slice * 100,
            net.sim.events_processed(),
            worst,
            st.data_pkts_sent,
            st.retransmits,
            st.acks_received,
            st.rtos,
            st.fast_recoveries,
            snd.debug_state()
        );
        if t0.elapsed().as_secs_f64() > 45.0 {
            eprintln!("aborting: too slow");
            break;
        }
    }
}
