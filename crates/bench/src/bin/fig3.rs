//! Regenerate **Figure 3**: the packet-loss to CWND-halving ratio in
//! CoreScale (a) and EdgeScale (b).

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_core::experiments::mathis;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("fig3");
    let rows = mathis::run_grid(&opts.config);
    section(
        "Figure 3 — packet-loss / CWND-halving ratio",
        &mathis::render(&rows),
    );
    println!(
        "\npaper: ratio ~1.7 and flow-count independent in EdgeScale;\n\
         6-9 and flow-count dependent in CoreScale.",
    );
    sw.finish();
}
