//! Ablation: CUBIC's optional mechanisms (HyStart, fast convergence).
//!
//! DESIGN.md lists the CCA feature set as a fidelity decision; this binary
//! quantifies how much each Linux-default mechanism matters in the paper's
//! two settings via all-Cubic same-RTT runs (Figure-4 style metrics).

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_core::build::BuiltNetwork;
use ccsim_core::report::render_table;
use ccsim_core::FlowGroup;
use ccsim_core::Scenario;
use ccsim_net::link::Link;
use ccsim_sim::{SimDuration, SimTime};

/// Run an all-Cubic scenario with explicit feature switches; returns
/// (JFI, utilization, loss rate).
fn run_variant(
    skeleton: Scenario,
    count: u32,
    fast_convergence: bool,
    hystart: bool,
) -> (f64, f64, f64) {
    let mut s = skeleton.flows(vec![FlowGroup::new(
        ccsim_cca::CcaKind::Cubic,
        count,
        SimDuration::from_millis(20),
    )]);
    s.convergence = None;
    let mut net = BuiltNetwork::build_with_factory(&s, &|_, _, mss, _| {
        Box::new(ccsim_cca::Cubic::with_options(
            mss,
            fast_convergence,
            hystart,
        ))
    });
    let warmup_end = SimTime::ZERO + s.warmup;
    net.sim.run_until(warmup_end);
    net.sim.component_mut::<Link>(net.link).reset_stats();
    let base = net.per_flow_delivered();
    net.sim.run_until(warmup_end + s.duration);
    let fin = net.per_flow_delivered();
    let secs = s.duration.as_secs_f64();
    let rates: Vec<f64> = fin
        .iter()
        .zip(&base)
        .map(|(&b, &a)| (b - a) as f64 / secs)
        .collect();
    let jfi = ccsim_analysis::jain_fairness_index(&rates).unwrap_or(0.0);
    let util = rates.iter().sum::<f64>() / s.bottleneck.as_bytes_per_sec();
    let loss = net.sim.component::<Link>(net.link).stats().loss_rate();
    (jfi, util, loss)
}

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("ablation cubic");
    let mut rows = Vec::new();
    let core_count = *opts.config.core_counts.first().unwrap_or(&200);
    for (label, skeleton, count) in [
        ("EdgeScale", opts.config.edge(), 30u32),
        ("CoreScale", opts.config.core(), core_count),
    ] {
        for (fc, hs) in [(true, true), (true, false), (false, true), (false, false)] {
            let (jfi, util, loss) = run_variant(skeleton.clone(), count, fc, hs);
            rows.push(vec![
                label.to_string(),
                count.to_string(),
                if fc { "on" } else { "off" }.into(),
                if hs { "on" } else { "off" }.into(),
                format!("{jfi:.3}"),
                format!("{:.1}%", util * 100.0),
                format!("{:.3}%", loss * 100.0),
            ]);
        }
    }
    section(
        "Ablation — CUBIC fast convergence × HyStart (all-Cubic, 20 ms)",
        &render_table(
            &[
                "setting",
                "flows",
                "fast-conv",
                "hystart",
                "JFI",
                "util",
                "loss",
            ],
            &rows,
        ),
    );
    sw.finish();
}
