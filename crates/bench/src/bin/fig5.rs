//! Regenerate **Figure 5**: Cubic's share of throughput against an equal
//! number of NewReno flows (paper: 70-80% in CoreScale).

use ccsim_bench::{parse_args, section, StageTimer};
use ccsim_cca::CcaKind;
use ccsim_core::experiments::inter;

fn main() {
    let opts = parse_args();
    let sw = StageTimer::new("fig5");
    let rows = inter::run_grid(&opts.config, CcaKind::Cubic, CcaKind::Reno);
    section(
        "Figure 5 — Cubic vs NewReno (equal counts)",
        &inter::render(&rows),
    );
    println!(
        "\npaper: Cubic takes 70-80% of total throughput at every scale\n\
         (the 'Home Link' reference in the figure is ~80%).",
    );
    sw.finish();
}
