//! # ccsim-bench — experiment regeneration harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table 1 — best-fit Mathis constants |
//! | `fig2` | Figure 2 — Mathis median prediction error |
//! | `fig3` | Figure 3 — packet-loss / CWND-halving ratio |
//! | `fig4` | Figure 4 — BBR intra-CCA JFI |
//! | `finding4` | Finding 4 — NewReno & Cubic intra-CCA JFI |
//! | `fig5` | Figure 5 — Cubic share vs NewReno |
//! | `fig6` | Figure 6 — 1 BBR vs N NewReno |
//! | `fig7` | Figure 7 — 1 BBR vs N Cubic |
//! | `fig8` | Figure 8 — N BBR vs N NewReno / N Cubic |
//! | `burstiness` | Finding 3 corroboration — drop burstiness |
//! | `all_experiments` | everything above, EXPERIMENTS.md-ready |
//!
//! All binaries accept:
//!
//! ```text
//! --fidelity quick|standard|paper   time-parameter preset
//! --seed N                          master seed (default 1)
//! --scale down|paper                flow-count grid (default down)
//! --rtts 20,100,200                 prune/extend the RTT sweep (ms)
//! --counts 1000,3000,5000           CoreScale counts (paper-scale values;
//!                                   scaled-down mode divides them by 5)
//! ```
//!
//! `--scale down` divides the paper's CoreScale flow counts *and* the
//! bottleneck bandwidth/buffer by 5 (2 Gbps, 200/600/1000 flows) — every
//! per-flow quantity matches the paper's grid exactly while a full figure
//! regenerates in minutes on a laptop; `--scale paper` runs the literal
//! 10 Gbps 1000/3000/5000 grid.
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the engine, the queue,
//! CCA ACK-processing cost, the min/max filter, and scaled-down end-to-end
//! scenario runs, plus the DESIGN.md ablations and the observability
//! registry's overhead (`registry_overhead`).

use ccsim_core::experiments::ExperimentConfig;
use ccsim_core::Fidelity;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// The experiment grid.
    pub config: ExperimentConfig,
    /// Whether the full paper-scale flow counts were requested.
    pub paper_scale: bool,
}

/// Parse common CLI arguments (exits with usage on malformed input).
pub fn parse_args() -> BenchOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fidelity = Fidelity::Standard;
    let mut seed = 1u64;
    let mut paper_scale = false;
    let mut rtts: Option<Vec<u64>> = None;
    let mut counts: Option<Vec<u32>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fidelity" => {
                i += 1;
                fidelity = match args.get(i).map(String::as_str) {
                    Some("quick") => Fidelity::Quick,
                    Some("standard") => Fidelity::Standard,
                    Some("paper") => Fidelity::Paper,
                    other => usage(&format!("bad --fidelity {other:?}")),
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed"));
            }
            "--scale" => {
                i += 1;
                paper_scale = match args.get(i).map(String::as_str) {
                    Some("down") => false,
                    Some("paper") => true,
                    other => usage(&format!("bad --scale {other:?}")),
                };
            }
            "--rtts" => {
                i += 1;
                rtts = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("missing --rtts value"))
                        .split(',')
                        .map(|x| x.parse().unwrap_or_else(|_| usage("bad --rtts")))
                        .collect(),
                );
            }
            "--counts" => {
                i += 1;
                counts = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("missing --counts value"))
                        .split(',')
                        .map(|x| x.parse().unwrap_or_else(|_| usage("bad --counts")))
                        .collect(),
                );
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let mut config = ExperimentConfig::paper_grid();
    config.fidelity = fidelity;
    config.seed = seed;
    if !paper_scale {
        // Divide flow counts AND bandwidth/buffer by 5: per-flow dynamics
        // are identical to the paper's 10 Gbps / 1000-5000 grid (see
        // ExperimentConfig::core_divisor), at a fifth of the event cost.
        config.core_counts = config.core_counts.iter().map(|&c| c / 5).collect();
        config.core_divisor = 5;
    }
    if let Some(r) = rtts {
        config.rtts_ms = r;
    }
    if let Some(c) = counts {
        // Paper-scale counts given directly; scaled-down mode divides them
        // alongside the bandwidth.
        config.core_counts = if paper_scale {
            c.clone()
        } else {
            c.iter().map(|&x| x / 5).collect()
        };
    }
    BenchOptions {
        config,
        paper_scale,
    }
}

fn usage(err: &str) -> ! {
    eprintln!(
        "{err}\n\nusage: <bin> [--fidelity quick|standard|paper] [--seed N] [--scale down|paper]"
    );
    std::process::exit(2);
}

/// Print a titled report section.
pub fn section(title: &str, body: &str) {
    println!("\n## {title}\n");
    println!("{body}");
}

// Stage timing and sweep progress for the figure binaries. These replace
// the old local `Stopwatch` + ad-hoc `eprintln!` pattern: every timing
// line now goes to stderr in one format, keeping stdout clean for the
// EXPERIMENTS.md-ready report bodies.
pub use ccsim_telemetry::{RunProgress, StageTimer, SweepProgress};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_scaled_down() {
        // parse_args reads real argv; test the scaling rule directly.
        let mut config = ExperimentConfig::paper_grid();
        config.core_counts = config.core_counts.iter().map(|&c| c / 5).collect();
        assert_eq!(config.core_counts, vec![200, 600, 1000]);
    }
}
