//! Fidelity reports: render a ledger as self-contained Markdown or HTML.
//!
//! The report is the campaign layer's answer to the paper's result
//! tables: a run summary, per-axis breakdown tables (the shape of
//! Table 1 and the per-CCA columns of Figures 2–4), a paper-metric
//! table with unicode sparkline histograms (events/sec and wall-time
//! distributions over the telemetry crate's log2 buckets), the
//! expectation pass/fail table (ranges quoted from paper figures, e.g.
//! JFI ≥ 0.9 for homogeneous Reno per Figure 4, Mathis error bands per
//! Figures 7–8), and the full per-job listing.

use crate::ledger::{Ledger, LedgerEntry};
use crate::spec::Expectation;
use ccsim_analysis::stats::{mean, std_dev};
use ccsim_telemetry::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a log2 histogram as a unicode sparkline over its occupied
/// bucket range. Returns "(empty)" when nothing was recorded.
pub fn sparkline(hist: &Histogram) -> String {
    let counts = hist.bucket_counts();
    let Some(hi) = hist.max_bucket() else {
        return "(empty)".to_string();
    };
    let lo = counts.iter().position(|&c| c > 0).unwrap_or(0);
    let peak = counts[lo..=hi].iter().copied().max().unwrap_or(1).max(1);
    counts[lo..=hi]
        .iter()
        .map(|&c| {
            if c == 0 {
                SPARK[0]
            } else {
                // Scale the occupied range onto the 8 glyph levels.
                let level = (c * (SPARK.len() as u64 - 1)).div_ceil(peak) as usize;
                SPARK[level.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "—".to_string(),
    }
}

/// Format a histogram quantile in engineer-friendly units (k/M suffixes
/// above 10^3/10^6). Returns "—" for an empty histogram.
fn fmt_quantile(hist: &Histogram, q: f64) -> String {
    match hist.quantile(q) {
        None => "—".to_string(),
        Some(v) if v >= 1e6 => format!("{:.1} M", v / 1e6),
        Some(v) if v >= 1e3 => format!("{:.1} k", v / 1e3),
        Some(v) => format!("{v:.0}"),
    }
}

fn fmt_mean_sd(values: &[f64]) -> String {
    match (mean(values), std_dev(values)) {
        (Some(m), Some(sd)) if values.len() > 1 => format!("{m:.4} ± {sd:.4}"),
        (Some(m), _) => format!("{m:.4}"),
        _ => "—".to_string(),
    }
}

fn collect(entries: &[&LedgerEntry], metric: &str) -> Vec<f64> {
    entries
        .iter()
        .filter_map(|e| match metric {
            "events_per_sec" => Some(e.events_per_sec),
            _ => e.metrics.as_ref().and_then(|m| m.get(metric)),
        })
        .collect()
}

/// Metrics shown in the per-axis and fidelity tables, in column order.
const TABLE_METRICS: [&str; 7] = [
    "jfi",
    "utilization",
    "loss_rate",
    "mathis_err",
    "sync_index",
    "share_a",
    "convergence_time",
];

/// One expectation's verdict against the mean over successful runs.
#[derive(Debug, Clone)]
pub struct ExpectationResult {
    pub expectation: Expectation,
    /// Mean of the metric over successful runs, when available.
    pub observed: Option<f64>,
    /// `None` when the metric was absent from every run.
    pub pass: Option<bool>,
}

/// Check the ledger's stored expectations against its entries.
pub fn check_expectations(ledger: &Ledger) -> Vec<ExpectationResult> {
    let ok: Vec<&LedgerEntry> = ledger.ok_entries().collect();
    ledger
        .expectations
        .iter()
        .map(|exp| {
            let observed = mean(&collect(&ok, &exp.metric));
            let pass = observed
                .map(|v| exp.min.is_none_or(|lo| v >= lo) && exp.max.is_none_or(|hi| v <= hi));
            ExpectationResult {
                expectation: exp.clone(),
                observed,
                pass,
            }
        })
        .collect()
}

/// Group successful entries by the value of one axis parameter.
fn by_axis_value<'a>(
    entries: &[&'a LedgerEntry],
    param: &str,
) -> BTreeMap<String, Vec<&'a LedgerEntry>> {
    let mut groups: BTreeMap<String, Vec<&LedgerEntry>> = BTreeMap::new();
    for &e in entries {
        if let Some((_, value)) = e.axis.iter().find(|(p, _)| p == param) {
            groups.entry(value.clone()).or_default().push(e);
        }
    }
    groups
}

fn axis_params(entries: &[&LedgerEntry]) -> Vec<String> {
    let mut params = Vec::new();
    for e in entries {
        for (p, _) in &e.axis {
            if !params.contains(p) {
                params.push(p.clone());
            }
        }
    }
    params
}

/// Render the full Markdown report for a ledger.
pub fn markdown(ledger: &Ledger) -> String {
    let mut out = String::with_capacity(4096);
    let ok: Vec<&LedgerEntry> = ledger.ok_entries().collect();
    let failed = ledger.entries.len() - ok.len();

    let _ = writeln!(out, "# Campaign report: {}\n", ledger.campaign);
    let _ = writeln!(
        out,
        "- Jobs: {} ({} ok, {} failed)",
        ledger.entries.len(),
        ok.len(),
        failed
    );
    if ledger.truncated {
        let _ = writeln!(
            out,
            "- **Warning:** ledger had a truncated final line (campaign was killed mid-run)"
        );
    }
    let total_events: u64 = ok.iter().map(|e| e.events_processed).sum();
    let total_wall: f64 = ok.iter().map(|e| e.wall_secs).sum();
    let total_sim: f64 = ok.iter().map(|e| e.sim_secs).sum();
    let _ = writeln!(
        out,
        "- Events: {total_events} over {total_sim:.1} simulated s in {total_wall:.1} wall s"
    );
    if total_wall > 0.0 {
        let _ = writeln!(
            out,
            "- Aggregate rate: {:.0} events/sec",
            total_events as f64 / total_wall
        );
    }
    out.push('\n');

    // Run-shape sparklines: where did wall time and event rate land?
    // Log2-bucketed like the engine's own metric histograms.
    let eps_hist = Histogram::new();
    let wall_hist = Histogram::new();
    for e in &ok {
        eps_hist.record(e.events_per_sec as u64);
        wall_hist.record((e.wall_secs * 1e3) as u64);
    }
    let _ = writeln!(out, "## Run shape\n");
    let _ = writeln!(
        out,
        "| distribution (log2 buckets) | sparkline | p50 | p90 | p99 |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    let _ = writeln!(
        out,
        "| events/sec | `{}` | {} | {} | {} |",
        sparkline(&eps_hist),
        fmt_quantile(&eps_hist, 0.50),
        fmt_quantile(&eps_hist, 0.90),
        fmt_quantile(&eps_hist, 0.99),
    );
    let _ = writeln!(
        out,
        "| wall ms per run | `{}` | {} | {} | {} |",
        sparkline(&wall_hist),
        fmt_quantile(&wall_hist, 0.50),
        fmt_quantile(&wall_hist, 0.90),
        fmt_quantile(&wall_hist, 0.99),
    );
    // Present only for campaigns run with `--timeline`: where in sim
    // time each run first reached (and held) an α-fair allocation.
    let conv: Vec<f64> = collect(&ok, "convergence_time");
    if !conv.is_empty() {
        let conv_hist = Histogram::new();
        for c in &conv {
            conv_hist.record((c * 1e3) as u64);
        }
        let _ = writeln!(
            out,
            "| convergence ms (sim) | `{}` | {} | {} | {} |",
            sparkline(&conv_hist),
            fmt_quantile(&conv_hist, 0.50),
            fmt_quantile(&conv_hist, 0.90),
            fmt_quantile(&conv_hist, 0.99),
        );
    }
    out.push('\n');

    // Paper fidelity metrics over the whole campaign.
    let _ = writeln!(out, "## Fidelity metrics (mean ± sd over runs)\n");
    let _ = writeln!(out, "| metric | value | paper reference |");
    let _ = writeln!(out, "|---|---|---|");
    let refs: BTreeMap<&str, &str> = BTreeMap::from([
        ("jfi", "Table 1 / Figure 4 (fairness at scale)"),
        ("utilization", "§3 testbed (bottleneck saturation)"),
        ("loss_rate", "Figure 2 (loss vs. flow count)"),
        ("mathis_err", "Figures 7–8 (model accuracy)"),
        ("sync_index", "§5 (loss synchronization)"),
        ("share_a", "Figures 5–6 (inter-CCA shares)"),
        ("convergence_time", "§4 (time to α-fair allocation)"),
    ]);
    for metric in TABLE_METRICS {
        let _ = writeln!(
            out,
            "| {metric} | {} | {} |",
            fmt_mean_sd(&collect(&ok, metric)),
            refs.get(metric).unwrap_or(&"")
        );
    }
    out.push('\n');

    // Per-bottleneck breakdown: runs on multi-bottleneck topologies (or
    // with AQM/ECN enabled) carry one record per congested link; group
    // them by link so each bottleneck gets its own utilization/JFI row.
    // (utilizations, jfis, loss rates, max queue bytes, CE-marked packets)
    type LinkAgg = (Vec<f64>, Vec<f64>, Vec<f64>, u64, u64);
    let mut per_link: BTreeMap<(u32, String), LinkAgg> = BTreeMap::new();
    for e in &ok {
        let Some(m) = e.metrics.as_ref() else {
            continue;
        };
        for b in &m.bottlenecks {
            let slot = per_link.entry((b.link, b.label.clone())).or_default();
            slot.0.push(b.utilization);
            if let Some(jfi) = b.jfi {
                slot.1.push(jfi);
            }
            slot.2.push(b.loss_rate);
            slot.3 = slot.3.max(b.max_queue_bytes);
            slot.4 += b.ce_marked_pkts;
        }
    }
    if !per_link.is_empty() {
        let _ = writeln!(out, "## Per-bottleneck (mean ± sd over runs)\n");
        let _ = writeln!(
            out,
            "| link | label | utilization | jfi | loss_rate | max queue B | CE marks |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        for ((link, label), (util, jfi, loss, max_q, ce)) in &per_link {
            let _ = writeln!(
                out,
                "| {link} | {label} | {} | {} | {} | {max_q} | {ce} |",
                fmt_mean_sd(util),
                fmt_mean_sd(jfi),
                fmt_mean_sd(loss),
            );
        }
        out.push('\n');
    }

    // Expectations.
    if !ledger.expectations.is_empty() {
        let _ = writeln!(out, "## Expectations\n");
        let _ = writeln!(out, "| metric | expected | observed | source | verdict |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for r in check_expectations(ledger) {
            let range = match (r.expectation.min, r.expectation.max) {
                (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
                (Some(lo), None) => format!("≥ {lo}"),
                (None, Some(hi)) => format!("≤ {hi}"),
                (None, None) => "(any)".to_string(),
            };
            let verdict = match r.pass {
                Some(true) => "pass",
                Some(false) => "**FAIL**",
                None => "no data",
            };
            let _ = writeln!(
                out,
                "| {} | {range} | {} | {} | {verdict} |",
                r.expectation.metric,
                fmt_opt(r.observed),
                r.expectation.source
            );
        }
        out.push('\n');
    }

    // Per-axis breakdowns.
    for param in axis_params(&ok) {
        let groups = by_axis_value(&ok, &param);
        if groups.len() < 2 {
            continue;
        }
        let _ = writeln!(out, "## By {param}\n");
        let _ = write!(out, "| {param} | runs |");
        for metric in TABLE_METRICS {
            let _ = write!(out, " {metric} |");
        }
        out.push('\n');
        let _ = write!(out, "|---|---|");
        for _ in TABLE_METRICS {
            out.push_str("---|");
        }
        out.push('\n');
        for (value, entries) in &groups {
            let _ = write!(out, "| {value} | {} |", entries.len());
            for metric in TABLE_METRICS {
                let _ = write!(out, " {} |", fmt_mean_sd(&collect(entries, metric)));
            }
            out.push('\n');
        }
        out.push('\n');
    }

    // Full job listing.
    let _ = writeln!(out, "## Jobs\n");
    let _ = writeln!(
        out,
        "| job | outcome digest | events/sec | jfi | util | status |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for e in &ledger.entries {
        let (digest, status) = match &e.outcome_digest {
            Some(d) => (format!("`{d}`"), "ok".to_string()),
            None => (
                "—".to_string(),
                format!(
                    "failed: {}",
                    e.error.as_deref().unwrap_or("?").replace('|', "\\|")
                ),
            ),
        };
        let m = e.metrics.as_ref();
        let _ = writeln!(
            out,
            "| {} | {digest} | {:.0} | {} | {} | {status} |",
            e.job,
            e.events_per_sec,
            fmt_opt(m.and_then(|m| m.jfi)),
            fmt_opt(m.map(|m| m.utilization)),
        );
    }
    out
}

/// Render the report as a self-contained HTML page (no external assets)
/// by converting the Markdown through a converter that understands the
/// subset [`markdown`] emits: headings, pipe tables, bullet lists,
/// inline code, and bold.
pub fn html(ledger: &Ledger) -> String {
    let md = markdown(ledger);
    let mut out = String::with_capacity(md.len() * 2);
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>");
    push_html_escaped(&mut out, &format!("Campaign report: {}", ledger.campaign));
    out.push_str(
        "</title>\n<style>\nbody{font-family:system-ui,sans-serif;max-width:72rem;\
         margin:2rem auto;padding:0 1rem;color:#1a1a20}\ntable{border-collapse:collapse;\
         margin:1rem 0}\nth,td{border:1px solid #ccc;padding:0.3rem 0.6rem;\
         text-align:left}\nth{background:#f0f0f4}\ncode{background:#f4f4f8;\
         padding:0 0.2rem}\n</style></head><body>\n",
    );

    let mut in_table = false;
    let mut in_list = false;
    for line in md.lines() {
        let is_table = line.starts_with('|');
        let is_item = line.starts_with("- ");
        if in_table && !is_table {
            out.push_str("</table>\n");
            in_table = false;
        }
        if in_list && !is_item {
            out.push_str("</ul>\n");
            in_list = false;
        }
        if let Some(h) = line.strip_prefix("## ") {
            out.push_str("<h2>");
            push_inline(&mut out, h);
            out.push_str("</h2>\n");
        } else if let Some(h) = line.strip_prefix("# ") {
            out.push_str("<h1>");
            push_inline(&mut out, h);
            out.push_str("</h1>\n");
        } else if is_item {
            if !in_list {
                out.push_str("<ul>\n");
                in_list = true;
            }
            out.push_str("<li>");
            push_inline(&mut out, &line[2..]);
            out.push_str("</li>\n");
        } else if is_table {
            let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            // Separator row (|---|---|) marks the previous row as header;
            // our converter instead emits <th> for the first row of each
            // table and skips the separator.
            if cells.iter().all(|c| c.chars().all(|ch| ch == '-')) {
                continue;
            }
            let tag = if !in_table { "th" } else { "td" };
            if !in_table {
                out.push_str("<table>\n");
                in_table = true;
            }
            out.push_str("<tr>");
            for cell in cells {
                let _ = write!(out, "<{tag}>");
                push_inline(&mut out, cell);
                let _ = write!(out, "</{tag}>");
            }
            out.push_str("</tr>\n");
        } else if !line.is_empty() {
            out.push_str("<p>");
            push_inline(&mut out, line);
            out.push_str("</p>\n");
        }
    }
    if in_table {
        out.push_str("</table>\n");
    }
    if in_list {
        out.push_str("</ul>\n");
    }
    out.push_str("</body></html>\n");
    out
}

fn push_html_escaped(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
}

/// Escape a Markdown fragment, mapping `**bold**` and `` `code` `` spans.
fn push_inline(out: &mut String, text: &str) {
    let mut rest = text;
    loop {
        if let Some(start) = rest.find("**") {
            if let Some(len) = rest[start + 2..].find("**") {
                push_html_escaped(out, &rest[..start]);
                out.push_str("<strong>");
                push_html_escaped(out, &rest[start + 2..start + 2 + len]);
                out.push_str("</strong>");
                rest = &rest[start + 4 + len..];
                continue;
            }
        }
        if let Some(start) = rest.find('`') {
            if let Some(len) = rest[start + 1..].find('`') {
                push_html_escaped(out, &rest[..start]);
                out.push_str("<code>");
                push_html_escaped(out, &rest[start + 1..start + 1 + len]);
                out.push_str("</code>");
                rest = &rest[start + 2 + len..];
                continue;
            }
        }
        push_html_escaped(out, rest);
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Rollup;
    use crate::spec::Tolerances;

    fn entry(seed: u64, cca: &str, jfi: f64) -> LedgerEntry {
        LedgerEntry {
            job: format!("c/cca={cca}/seed={seed}"),
            axis: vec![("cca".into(), cca.into())],
            seed,
            config_digest: format!("{:016x}", seed * 7 + cca.len() as u64),
            outcome_digest: Some(format!("{seed:016x}")),
            error: None,
            crash_bundle: None,
            attempts: 1,
            quarantined: false,
            sim_secs: 5.0,
            wall_secs: 0.5,
            events_processed: 100_000,
            events_per_sec: 200_000.0,
            eps_by_kind: Vec::new(),
            metrics: Some(Rollup {
                jfi: Some(jfi),
                utilization: 0.9,
                aggregate_mbps: 9.0,
                loss_rate: 0.01,
                mathis_err: Some(0.1),
                sync_index: None,
                drop_burstiness: None,
                share_a: Some(0.5),
                convergence_time: None,
                bottlenecks: Vec::new(),
            }),
            manifest: None,
        }
    }

    fn sample_ledger() -> Ledger {
        let mut l = Ledger::new("c", Tolerances::default());
        l.expectations = vec![
            Expectation {
                metric: "jfi".into(),
                min: Some(0.8),
                max: None,
                source: "Figure 4".into(),
            },
            Expectation {
                metric: "loss_rate".into(),
                min: None,
                max: Some(0.001),
                source: "Figure 2".into(),
            },
        ];
        l.entries = vec![
            entry(1, "reno", 0.95),
            entry(2, "reno", 0.97),
            entry(1, "cubic", 0.91),
            entry(2, "cubic", 0.89),
        ];
        l
    }

    #[test]
    fn sparkline_covers_occupied_buckets_only() {
        let h = Histogram::new();
        assert_eq!(sparkline(&h), "(empty)");
        for v in [1u64, 1, 1, 2, 1000] {
            h.record(v);
        }
        let s = sparkline(&h);
        // Buckets 1 (value 1, count 3), 2 (value 2), then a gap to
        // bucket 10 (value 1000): 10 glyphs, peak first, valley inside.
        assert_eq!(s.chars().count(), 10);
        assert_eq!(s.chars().next(), Some('█'));
        assert!(s.contains('▁'));
    }

    #[test]
    fn expectations_pass_and_fail() {
        let results = check_expectations(&sample_ledger());
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].pass, Some(true)); // mean jfi = 0.93 >= 0.8
        assert_eq!(results[1].pass, Some(false)); // loss 0.01 > 0.001
    }

    #[test]
    fn markdown_report_has_the_expected_sections() {
        let md = markdown(&sample_ledger());
        assert!(md.contains("# Campaign report: c"));
        assert!(md.contains("## Fidelity metrics"));
        assert!(md.contains("## Expectations"));
        assert!(md.contains("## By cca"));
        assert!(md.contains("| cubic | 2 |"));
        assert!(md.contains("## Jobs"));
        assert!(md.contains("c/cca=reno/seed=1"));
        assert!(md.contains("**FAIL**"));
        assert!(md.contains("Figures 7–8"));
        // Run-shape rows carry percentiles next to the sparklines. Every
        // sample entry records events_per_sec = 200k, so each eps
        // percentile interpolates inside the [131072, 262143] bucket.
        assert!(md.contains("| p50 | p90 | p99 |"));
        let eps_row = md
            .lines()
            .find(|l| l.starts_with("| events/sec"))
            .expect("events/sec row");
        let p50 = eps_row
            .split('|')
            .nth(3)
            .expect("p50 column")
            .trim()
            .to_string();
        assert!(p50.ends_with('k'), "p50 = {p50:?}");
        // No run carried a timeline, so the convergence row is absent and
        // its per-axis column shows an em-dash.
        assert!(!md.contains("convergence ms"));
        assert!(md.contains(" convergence_time |"));
    }

    #[test]
    fn convergence_sparkline_appears_when_timelines_were_captured() {
        let mut ledger = sample_ledger();
        for (i, e) in ledger.entries.iter_mut().enumerate() {
            e.metrics.as_mut().unwrap().convergence_time = Some(1.5 + i as f64 * 0.5);
        }
        let md = markdown(&ledger);
        assert!(md.contains("| convergence ms (sim) | `"));
        // The per-axis table now carries real numbers in the column.
        let cubic_row = md
            .lines()
            .find(|l| l.starts_with("| cubic | 2 |"))
            .expect("cubic axis row");
        let last = cubic_row
            .trim_end_matches(" |")
            .rsplit("| ")
            .next()
            .unwrap();
        assert!(last.contains("±"), "convergence cell = {last:?}");
    }

    #[test]
    fn per_bottleneck_section_appears_only_when_records_exist() {
        let plain = markdown(&sample_ledger());
        assert!(!plain.contains("Per-bottleneck"));

        let mut ledger = sample_ledger();
        for (i, e) in ledger.entries.iter_mut().enumerate() {
            e.metrics.as_mut().unwrap().bottlenecks = vec![ccsim_core::BottleneckMetrics {
                link: 0,
                label: "bn0".into(),
                utilization: 0.9 + i as f64 * 0.01,
                jfi: Some(0.8),
                loss_rate: 0.001,
                max_queue_bytes: 50_000 + i as u64,
                ce_marked_pkts: 3,
            }];
        }
        let md = markdown(&ledger);
        assert!(md.contains("## Per-bottleneck"));
        assert!(md.contains("| 0 | bn0 |"));
        // max queue is the max over runs, CE marks the total.
        assert!(md.contains("| 50003 | 12 |"));
    }

    #[test]
    fn failed_runs_show_in_the_job_table() {
        let mut ledger = sample_ledger();
        ledger.entries[3].outcome_digest = None;
        ledger.entries[3].metrics = None;
        ledger.entries[3].error = Some("invariant violated | queue".into());
        let md = markdown(&ledger);
        assert!(md.contains("(3 ok, 1 failed)"));
        assert!(md.contains("failed: invariant violated \\| queue"));
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        let mut ledger = sample_ledger();
        ledger.entries[0].job = "c/cca=<reno>&co/seed=1".into();
        let page = html(&ledger);
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("<table>"));
        assert!(page.contains("&lt;reno&gt;&amp;co"));
        assert!(!page.contains("<reno>"));
        assert!(page.contains("</html>"));
        // No external assets.
        assert!(!page.contains("http://"));
        assert!(!page.contains("https://"));
        assert!(page.contains("<strong>FAIL</strong>"));
    }
}
