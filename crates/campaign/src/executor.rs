//! The parallel sweep executor: a worker pool over campaign jobs.
//!
//! Each job runs through the existing observed-run path
//! ([`ccsim_core::try_run_observed`]) on its own thread, so every run
//! carries its provenance manifest and the observation-inertness
//! guarantee. The pool is a plain `std::thread::scope` with an atomic
//! job-pull counter — the same shape as `ccsim_core::run_all`, plus
//! failure capture: typed errors and panics become failed [`JobResult`]s
//! (with an optional crash bundle) instead of tearing down the campaign.
//!
//! Determinism: a scenario's outcome depends only on its configuration
//! and seed, never on scheduling, so a campaign run with `--workers 8`
//! produces per-run outcome digests byte-identical to `--workers 1`.
//! The integration tests assert exactly that.

use crate::spec::CampaignJob;
use ccsim_analysis::mathis::fit_constant;
use ccsim_cca::CcaKind;
use ccsim_core::observe::scenario_digest;
use ccsim_core::{
    crash, try_run_observed_with, BottleneckMetrics, ObserveOptions, ObservedRun, PInterpretation,
    RunOutcome, Scenario,
};
use ccsim_sim::SimDuration;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The trace bin used for the ledger's synchronization-index rollup
/// (matches the CLI's `--sync-bin` default).
pub const SYNC_BIN: SimDuration = SimDuration::from_millis(10);

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorOptions {
    /// Worker threads. 1 runs the jobs serially in input order.
    pub workers: usize,
    /// When set, failed jobs write a replayable crash bundle here.
    pub crash_dir: Option<PathBuf>,
    /// Attach the `ccsim-prof` profiler to every job. Digest-inert; the
    /// per-run [`ccsim_prof::Profile`] rides in each ledger entry's
    /// manifest, and the sentinel gains per-event-kind events/s gates.
    pub profile: bool,
}

impl Default for ExecutorOptions {
    fn default() -> ExecutorOptions {
        ExecutorOptions {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            crash_dir: None,
            profile: false,
        }
    }
}

/// The paper-fidelity metrics distilled from one run — what the ledger
/// stores per entry and what `campaign diff` compares across ledgers.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollup {
    /// Jain's Fairness Index across all flows.
    pub jfi: Option<f64>,
    /// Bottleneck utilization over the window.
    pub utilization: f64,
    /// Aggregate throughput, Mbps.
    pub aggregate_mbps: f64,
    /// Aggregate bottleneck loss rate.
    pub loss_rate: f64,
    /// Median relative Mathis prediction error (packet-loss
    /// interpretation) for the run's majority CCA.
    pub mathis_err: Option<f64>,
    /// Trace-based loss-synchronization index (needs tracing enabled).
    pub sync_index: Option<f64>,
    /// Goh–Barabási burstiness of the drop train.
    pub drop_burstiness: Option<f64>,
    /// Throughput share of the first flow group's CCA.
    pub share_a: Option<f64>,
    /// Per-bottleneck utilization/fairness records. Empty for legacy
    /// single-bottleneck drop-tail runs (the runner only populates them
    /// for topology-subsystem configurations), so old ledger lines parse
    /// and re-serialize byte-identically.
    pub bottlenecks: Vec<BottleneckMetrics>,
}

impl Rollup {
    /// Distill an outcome into its ledger rollup.
    pub fn of(outcome: &RunOutcome) -> Rollup {
        let majority = majority_cca(outcome);
        let mathis_err = majority.and_then(|cca| {
            fit_constant(&outcome.mathis_observations(cca, PInterpretation::PacketLoss))
                .map(|f| f.median_error)
        });
        Rollup {
            jfi: outcome.jain_index(),
            utilization: outcome.utilization(),
            aggregate_mbps: outcome.aggregate_throughput_mbps(),
            loss_rate: outcome.aggregate_loss_rate,
            mathis_err,
            sync_index: outcome.trace_synchronization_index(SYNC_BIN),
            drop_burstiness: outcome.drop_burstiness,
            share_a: outcome
                .flow_cca
                .first()
                .and_then(|&cca| outcome.share_of(cca)),
            bottlenecks: outcome.bottlenecks.clone(),
        }
    }

    /// Look up a metric by its spec/ledger name.
    pub fn get(&self, metric: &str) -> Option<f64> {
        match metric {
            "jfi" => self.jfi,
            "utilization" => Some(self.utilization),
            "aggregate_mbps" => Some(self.aggregate_mbps),
            "loss_rate" => Some(self.loss_rate),
            "mathis_err" => self.mathis_err,
            "sync_index" => self.sync_index,
            "drop_burstiness" => self.drop_burstiness,
            "share_a" => self.share_a,
            // Worst-case fairness across the topology's bottlenecks —
            // lets expectations bound every congested link at once.
            "bottleneck_jfi_min" => self
                .bottlenecks
                .iter()
                .filter_map(|b| b.jfi)
                .min_by(|a, b| a.total_cmp(b)),
            _ => None,
        }
    }
}

fn majority_cca(outcome: &RunOutcome) -> Option<CcaKind> {
    let mut kinds: Vec<CcaKind> = outcome.flow_cca.clone();
    kinds.sort_by_key(|k| k.name());
    kinds.dedup();
    kinds.into_iter().max_by_key(|&k| outcome.count_of(k))
}

/// The result of one executed job: the observed run on success, an error
/// string (typed failure or panic message) otherwise.
#[derive(Debug)]
pub struct JobResult {
    pub job: CampaignJob,
    /// FNV-1a digest of the job's scenario configuration.
    pub config_digest: u64,
    pub run: Result<ObservedRun, String>,
    /// Crash-bundle directory, when the job failed and a crash dir was
    /// configured and the bundle write succeeded.
    pub crash_bundle: Option<PathBuf>,
}

impl JobResult {
    /// The outcome digest, for successful runs.
    pub fn outcome_digest(&self) -> Option<u64> {
        self.run.as_ref().ok().map(|obs| obs.outcome.digest())
    }

    /// The metric rollup, for successful runs.
    pub fn rollup(&self) -> Option<Rollup> {
        self.run.as_ref().ok().map(|obs| Rollup::of(&obs.outcome))
    }
}

fn run_one(job: CampaignJob, opts: &ExecutorOptions) -> JobResult {
    let config_digest = scenario_digest(&job.scenario);
    let observe = if opts.profile {
        ObserveOptions::profiled()
    } else {
        ObserveOptions::default()
    };
    let caught = catch_unwind(AssertUnwindSafe(|| {
        try_run_observed_with(&job.scenario, observe, |_| {})
    }));
    let error = match caught {
        Ok(Ok(obs)) => {
            return JobResult {
                job,
                config_digest,
                run: Ok(obs),
                crash_bundle: None,
            }
        }
        Ok(Err(e)) => e,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            ccsim_core::SimError::Panic { message }
        }
    };
    let crash_bundle = opts
        .crash_dir
        .as_ref()
        .and_then(|dir| crash::write_bundle(dir, &job.scenario, &error).ok());
    JobResult {
        job,
        config_digest,
        run: Err(error.to_string()),
        crash_bundle,
    }
}

/// Run every job on a pool of `opts.workers` threads, returning results
/// in input order. `on_done` fires from the worker thread as each job
/// completes (completion order, not input order) — feed it a
/// [`ccsim_telemetry::CampaignProgress`] and/or a ledger writer.
pub fn run_campaign<F>(jobs: Vec<CampaignJob>, opts: &ExecutorOptions, on_done: F) -> Vec<JobResult>
where
    F: Fn(&JobResult) + Sync,
{
    let workers = opts.workers.max(1).min(jobs.len().max(1));
    if workers == 1 {
        return jobs
            .into_iter()
            .map(|job| {
                let r = run_one(job, opts);
                on_done(&r);
                r
            })
            .collect();
    }
    let mut results: Vec<Option<JobResult>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    let jobs_shared: Vec<Mutex<Option<CampaignJob>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let results_mutex = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs_shared.len() {
                    break;
                }
                let job = jobs_shared[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each job is claimed exactly once");
                let r = run_one(job, opts);
                on_done(&r);
                results_mutex.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect()
}

/// Run plain scenarios through the campaign executor (no axes — job
/// names are the scenario names). This is how the bench binaries'
/// experiment grids ride the pool: build scenarios as before, execute
/// them here, get outcomes back in input order.
pub fn run_scenarios<F>(
    scenarios: &[Scenario],
    opts: &ExecutorOptions,
    on_done: F,
) -> Vec<JobResult>
where
    F: Fn(&JobResult) + Sync,
{
    let jobs = scenarios
        .iter()
        .map(|s| CampaignJob {
            name: s.name.clone(),
            axis: Vec::new(),
            seed: s.seed,
            scenario: s.clone(),
        })
        .collect();
    run_campaign(jobs, opts, on_done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_core::FlowGroup;
    use ccsim_sim::Bandwidth;

    fn tiny(seed: u64) -> Scenario {
        let mut s = Scenario::edge_scale()
            .named(format!("tiny/seed={seed}"))
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                2,
                SimDuration::from_millis(20),
            )])
            .seed(seed);
        s.bottleneck = Bandwidth::from_mbps(10);
        s.buffer_bytes = 100_000;
        s.warmup = SimDuration::from_secs(1);
        s.duration = SimDuration::from_secs(4);
        s.start_jitter = SimDuration::from_millis(100);
        s.convergence = None;
        s
    }

    #[test]
    fn results_come_back_in_input_order() {
        let scenarios: Vec<Scenario> = (1..=4).map(tiny).collect();
        let opts = ExecutorOptions {
            workers: 4,
            ..ExecutorOptions::default()
        };
        let results = run_scenarios(&scenarios, &opts, |_| {});
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.job.seed, i as u64 + 1);
            assert!(r.run.is_ok(), "{:?}", r.run.as_ref().err());
        }
    }

    #[test]
    fn failed_jobs_surface_as_errors_not_panics() {
        // An invalid scenario (zero duration) fails inside the runner.
        let mut bad = tiny(1);
        bad.duration = SimDuration::from_secs(0);
        let jobs = vec![CampaignJob {
            name: "bad".into(),
            axis: Vec::new(),
            seed: 1,
            scenario: bad,
        }];
        let results = run_campaign(jobs, &ExecutorOptions::default(), |_| {});
        assert_eq!(results.len(), 1);
        let err = results[0].run.as_ref().unwrap_err();
        assert!(err.contains("duration"), "{err}");
        assert!(results[0].crash_bundle.is_none());
    }

    #[test]
    fn rollup_reads_the_paper_metrics() {
        let results = run_scenarios(&[tiny(3)], &ExecutorOptions::default(), |_| {});
        let rollup = results[0].rollup().unwrap();
        assert!(rollup.utilization > 0.5);
        assert!(rollup.jfi.unwrap() > 0.5);
        assert_eq!(rollup.get("utilization"), Some(rollup.utilization));
        assert_eq!(rollup.get("jfi"), rollup.jfi);
        assert_eq!(rollup.get("nonsense"), None);
        // No trace configured: the sync index is absent, not invented.
        assert_eq!(rollup.sync_index, None);
    }
}
