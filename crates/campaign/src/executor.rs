//! The parallel sweep executor: a worker pool over campaign jobs.
//!
//! Each job runs through the existing observed-run path
//! ([`ccsim_core::try_run_observed`]) on its own thread, so every run
//! carries its provenance manifest and the observation-inertness
//! guarantee. The pool is a plain `std::thread::scope` with an atomic
//! job-pull counter — the same shape as `ccsim_core::run_all`, plus
//! failure capture: typed errors and panics become failed [`JobResult`]s
//! (with an optional crash bundle) instead of tearing down the campaign.
//!
//! Determinism: a scenario's outcome depends only on its configuration
//! and seed, never on scheduling, so a campaign run with `--workers 8`
//! produces per-run outcome digests byte-identical to `--workers 1`.
//! The integration tests assert exactly that.

use crate::spec::CampaignJob;
use ccsim_analysis::mathis::fit_constant;
use ccsim_cca::CcaKind;
use ccsim_core::observe::scenario_digest;
use ccsim_core::{
    crash, try_run_observed_live, BottleneckMetrics, LiveState, ObserveOptions, ObservedRun,
    PInterpretation, RunOutcome, Scenario, TimelineConfig,
};
use ccsim_sim::SimDuration;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The trace bin used for the ledger's synchronization-index rollup
/// (matches the CLI's `--sync-bin` default).
pub const SYNC_BIN: SimDuration = SimDuration::from_millis(10);

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorOptions {
    /// Worker threads. 1 runs the jobs serially in input order.
    pub workers: usize,
    /// When set, failed jobs write a replayable crash bundle here.
    pub crash_dir: Option<PathBuf>,
    /// Attach the `ccsim-prof` profiler to every job. Digest-inert; the
    /// per-run [`ccsim_prof::Profile`] rides in each ledger entry's
    /// manifest, and the sentinel gains per-event-kind events/s gates.
    pub profile: bool,
    /// Capture a windowed timeline on every job. Digest-inert; the
    /// per-run [`ccsim_core::TimelineSummary`] rides in each ledger
    /// entry's manifest, feeding the rollup's `convergence_time` and the
    /// sentinel's convergence-drift gate.
    pub timeline: Option<TimelineConfig>,
    /// Shared live-endpoint state for `campaign run --serve`: every job
    /// publishes its metrics/timeline snapshots here as it progresses
    /// (last writer wins across workers).
    pub live: Option<Arc<LiveState>>,
}

impl Default for ExecutorOptions {
    fn default() -> ExecutorOptions {
        ExecutorOptions {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            crash_dir: None,
            profile: false,
            timeline: None,
            live: None,
        }
    }
}

/// Supervision policy for campaign jobs: wall-clock budgets, hang
/// detection, bounded retries, and quarantine.
///
/// With neither `job_budget` nor `heartbeat_timeout` set, attempts run
/// inline on the worker thread (zero overhead). With either set, each
/// attempt runs on a detached thread the supervisor polls; a hung
/// attempt is abandoned (its thread parked behind a cancel flag) rather
/// than joined, so one wedged run can never deadlock the campaign.
///
/// A job that fails every attempt (`max_retries` + 1 of them) is
/// *quarantined*: it surfaces as a failed [`JobResult`] with
/// `quarantined = true`, the campaign keeps going, and the final report
/// lists it.
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// Wall-clock cap per attempt. `None` = unlimited.
    pub job_budget: Option<Duration>,
    /// Longest tolerated silence between progress heartbeats (the
    /// runner's per-slice [`Progress`](ccsim_core::Progress) callbacks)
    /// before an attempt is declared hung. `None` = no hang detection.
    pub heartbeat_timeout: Option<Duration>,
    /// Retries after the first failed attempt (0 = fail fast).
    pub max_retries: u32,
    /// Linear backoff: the wait before retry `k` (1-based) is
    /// `backoff * k`. Deterministic — no jitter, by design.
    pub backoff: Duration,
    /// Test hook: jobs whose name contains this substring panic at their
    /// first progress report. Exercises the retry/quarantine/crash-bundle
    /// path without a buggy scenario.
    pub force_panic_jobs: Option<String>,
    /// Test hook: jobs whose name contains this substring stop
    /// heartbeating at their first progress report (until the supervisor
    /// abandons them). Exercises hang detection.
    pub force_hang_jobs: Option<String>,
}

impl Default for SupervisorOptions {
    fn default() -> SupervisorOptions {
        SupervisorOptions {
            job_budget: None,
            heartbeat_timeout: None,
            max_retries: 0,
            backoff: Duration::from_millis(50),
            force_panic_jobs: None,
            force_hang_jobs: None,
        }
    }
}

impl SupervisorOptions {
    fn monitored(&self) -> bool {
        self.job_budget.is_some() || self.heartbeat_timeout.is_some()
    }

    fn forces_panic(&self, job_name: &str) -> bool {
        self.force_panic_jobs
            .as_deref()
            .is_some_and(|needle| job_name.contains(needle))
    }

    fn forces_hang(&self, job_name: &str) -> bool {
        self.force_hang_jobs
            .as_deref()
            .is_some_and(|needle| job_name.contains(needle))
    }
}

/// The paper-fidelity metrics distilled from one run — what the ledger
/// stores per entry and what `campaign diff` compares across ledgers.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollup {
    /// Jain's Fairness Index across all flows.
    pub jfi: Option<f64>,
    /// Bottleneck utilization over the window.
    pub utilization: f64,
    /// Aggregate throughput, Mbps.
    pub aggregate_mbps: f64,
    /// Aggregate bottleneck loss rate.
    pub loss_rate: f64,
    /// Median relative Mathis prediction error (packet-loss
    /// interpretation) for the run's majority CCA.
    pub mathis_err: Option<f64>,
    /// Trace-based loss-synchronization index (needs tracing enabled).
    pub sync_index: Option<f64>,
    /// Goh–Barabási burstiness of the drop train.
    pub drop_burstiness: Option<f64>,
    /// Throughput share of the first flow group's CCA.
    pub share_a: Option<f64>,
    /// Time to α-fair convergence (seconds, sim time) from the run's
    /// timeline capture. `None` for runs without a timeline, runs that
    /// never reached α, and legacy ledger lines (the key is absent from
    /// their JSON, so they re-serialize byte-identically).
    pub convergence_time: Option<f64>,
    /// Per-bottleneck utilization/fairness records. Empty for legacy
    /// single-bottleneck drop-tail runs (the runner only populates them
    /// for topology-subsystem configurations), so old ledger lines parse
    /// and re-serialize byte-identically.
    pub bottlenecks: Vec<BottleneckMetrics>,
}

impl Rollup {
    /// Distill an outcome into its ledger rollup.
    pub fn of(outcome: &RunOutcome) -> Rollup {
        let majority = majority_cca(outcome);
        let mathis_err = majority.and_then(|cca| {
            fit_constant(&outcome.mathis_observations(cca, PInterpretation::PacketLoss))
                .map(|f| f.median_error)
        });
        Rollup {
            jfi: outcome.jain_index(),
            utilization: outcome.utilization(),
            aggregate_mbps: outcome.aggregate_throughput_mbps(),
            loss_rate: outcome.aggregate_loss_rate,
            mathis_err,
            sync_index: outcome.trace_synchronization_index(SYNC_BIN),
            drop_burstiness: outcome.drop_burstiness,
            share_a: outcome
                .flow_cca
                .first()
                .and_then(|&cca| outcome.share_of(cca)),
            // The outcome carries no timeline (it must stay digest-inert);
            // JobResult::rollup injects it from the manifest.
            convergence_time: None,
            bottlenecks: outcome.bottlenecks.clone(),
        }
    }

    /// Look up a metric by its spec/ledger name.
    pub fn get(&self, metric: &str) -> Option<f64> {
        match metric {
            "jfi" => self.jfi,
            "utilization" => Some(self.utilization),
            "aggregate_mbps" => Some(self.aggregate_mbps),
            "loss_rate" => Some(self.loss_rate),
            "mathis_err" => self.mathis_err,
            "sync_index" => self.sync_index,
            "drop_burstiness" => self.drop_burstiness,
            "share_a" => self.share_a,
            "convergence_time" => self.convergence_time,
            // Worst-case fairness across the topology's bottlenecks —
            // lets expectations bound every congested link at once.
            "bottleneck_jfi_min" => self
                .bottlenecks
                .iter()
                .filter_map(|b| b.jfi)
                .min_by(|a, b| a.total_cmp(b)),
            _ => None,
        }
    }
}

fn majority_cca(outcome: &RunOutcome) -> Option<CcaKind> {
    let mut kinds: Vec<CcaKind> = outcome.flow_cca.clone();
    kinds.sort_by_key(|k| k.name());
    kinds.dedup();
    kinds.into_iter().max_by_key(|&k| outcome.count_of(k))
}

/// The result of one executed job: the observed run on success, an error
/// string (typed failure or panic message) otherwise.
#[derive(Debug)]
pub struct JobResult {
    pub job: CampaignJob,
    /// FNV-1a digest of the job's scenario configuration.
    pub config_digest: u64,
    pub run: Result<ObservedRun, String>,
    /// Crash-bundle directory, when the job failed and a crash dir was
    /// configured and the bundle write succeeded.
    pub crash_bundle: Option<PathBuf>,
    /// Attempts consumed (1 unless the supervisor retried).
    pub attempts: u32,
    /// The job failed every configured attempt and was quarantined
    /// (implies `run` is `Err`; the campaign completed without it).
    pub quarantined: bool,
}

impl JobResult {
    /// The outcome digest, for successful runs.
    pub fn outcome_digest(&self) -> Option<u64> {
        self.run.as_ref().ok().map(|obs| obs.outcome.digest())
    }

    /// The metric rollup, for successful runs. Timeline-derived fields
    /// come from the manifest (the outcome itself stays digest-inert).
    pub fn rollup(&self) -> Option<Rollup> {
        self.run.as_ref().ok().map(|obs| {
            let mut r = Rollup::of(&obs.outcome);
            r.convergence_time = obs
                .manifest
                .timeline
                .as_ref()
                .and_then(|t| t.time_to_alpha_fair);
            r
        })
    }
}

/// One attempt's failure: a typed simulator error (including panics
/// folded into [`SimError::Panic`](ccsim_core::SimError)), or a hang the
/// supervisor detected from outside (no error value exists — the attempt
/// thread is still wedged).
enum AttemptError {
    Sim(ccsim_core::SimError),
    Hang(String),
}

impl AttemptError {
    fn message(&self) -> String {
        match self {
            AttemptError::Sim(e) => e.to_string(),
            AttemptError::Hang(msg) => msg.clone(),
        }
    }
}

/// Run one attempt inline, folding panics (including the forced-panic
/// test hook) into `SimError::Panic` with the payload text preserved.
fn attempt(
    job: &CampaignJob,
    observe: ObserveOptions,
    live: Option<Arc<LiveState>>,
    sup: &SupervisorOptions,
    heartbeat: &AtomicU64,
    cancel: &AtomicBool,
    clock: Instant,
) -> Result<ObservedRun, ccsim_core::SimError> {
    let force_panic = sup.forces_panic(&job.name);
    let force_hang = sup.forces_hang(&job.name);
    let mut hook_fired = false;
    let caught = catch_unwind(AssertUnwindSafe(|| {
        try_run_observed_live(&job.scenario, observe, None, live, |_| {
            heartbeat.store(clock.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if !hook_fired {
                hook_fired = true;
                if force_panic {
                    panic!("forced panic (supervisor test hook)");
                }
                if force_hang {
                    // Go silent until the supervisor abandons the
                    // attempt, then unwind so the thread actually exits
                    // (the result channel is already closed; the send
                    // below fails silently).
                    while !cancel.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    panic!("forced hang (supervisor test hook): cancelled");
                }
            }
        })
        .map(|(obs, _)| obs)
    }));
    match caught {
        Ok(r) => r,
        Err(payload) => Err(ccsim_core::SimError::Panic {
            message: ccsim_core::panic_message(payload.as_ref()),
        }),
    }
}

/// Run one attempt under supervision. Unmonitored jobs run inline on the
/// worker thread; monitored jobs run on a detached thread the supervisor
/// polls for completion, budget overrun, and heartbeat silence.
fn supervised_attempt(
    job: &CampaignJob,
    observe: ObserveOptions,
    live: Option<Arc<LiveState>>,
    sup: &SupervisorOptions,
) -> Result<ObservedRun, AttemptError> {
    let heartbeat = Arc::new(AtomicU64::new(0));
    let cancel = Arc::new(AtomicBool::new(false));
    let clock = Instant::now();
    if !sup.monitored() {
        return attempt(job, observe, live, sup, &heartbeat, &cancel, clock)
            .map_err(AttemptError::Sim);
    }
    let (tx, rx) = mpsc::channel();
    let handle = {
        let job = job.clone();
        let sup = sup.clone();
        let heartbeat = Arc::clone(&heartbeat);
        let cancel = Arc::clone(&cancel);
        std::thread::Builder::new()
            .name(format!("ccsim-job:{}", job.name))
            .spawn(move || {
                let _ = tx.send(attempt(
                    &job, observe, live, &sup, &heartbeat, &cancel, clock,
                ));
            })
            .expect("spawn job attempt thread")
    };
    loop {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(r) => {
                let _ = handle.join();
                return r.map_err(AttemptError::Sim);
            }
            Err(RecvTimeoutError::Disconnected) => {
                // The attempt thread died without sending (it cannot
                // panic past the catch_unwind; this is belt-and-braces).
                let _ = handle.join();
                return Err(AttemptError::Hang(
                    "job thread exited without reporting a result".to_string(),
                ));
            }
            Err(RecvTimeoutError::Timeout) => {
                let elapsed = clock.elapsed();
                if let Some(budget) = sup.job_budget {
                    if elapsed > budget {
                        cancel.store(true, Ordering::Relaxed);
                        return Err(AttemptError::Hang(format!(
                            "attempt exceeded its wall-clock budget ({}ms > {}ms); abandoned",
                            elapsed.as_millis(),
                            budget.as_millis()
                        )));
                    }
                }
                if let Some(limit) = sup.heartbeat_timeout {
                    let last = Duration::from_nanos(heartbeat.load(Ordering::Relaxed));
                    let silence = elapsed.saturating_sub(last);
                    if silence > limit {
                        cancel.store(true, Ordering::Relaxed);
                        return Err(AttemptError::Hang(format!(
                            "no progress heartbeat for {}ms (limit {}ms); attempt abandoned as hung",
                            silence.as_millis(),
                            limit.as_millis()
                        )));
                    }
                }
            }
        }
    }
}

fn run_one(job: CampaignJob, opts: &ExecutorOptions, sup: &SupervisorOptions) -> JobResult {
    let config_digest = scenario_digest(&job.scenario);
    let mut observe = if opts.profile {
        ObserveOptions::profiled()
    } else {
        ObserveOptions::default()
    };
    observe.timeline = opts.timeline;
    let max_attempts = sup.max_retries.saturating_add(1);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let failure = match supervised_attempt(&job, observe, opts.live.clone(), sup) {
            Ok(obs) => {
                return JobResult {
                    job,
                    config_digest,
                    run: Ok(obs),
                    crash_bundle: None,
                    attempts,
                    quarantined: false,
                }
            }
            Err(e) => e,
        };
        if attempts < max_attempts {
            std::thread::sleep(sup.backoff.saturating_mul(attempts));
            continue;
        }
        // Final failure: quarantine. A crash bundle only makes sense for
        // typed errors/panics — a hung attempt never produced one.
        let crash_bundle = match (&opts.crash_dir, &failure) {
            (Some(dir), AttemptError::Sim(error)) => {
                crash::write_bundle(dir, &job.scenario, error).ok()
            }
            _ => None,
        };
        return JobResult {
            job,
            config_digest,
            run: Err(failure.message()),
            crash_bundle,
            attempts,
            quarantined: true,
        };
    }
}

/// Run every job on a pool of `opts.workers` threads, returning results
/// in input order. `on_done` fires from the worker thread as each job
/// completes (completion order, not input order) — feed it a
/// [`ccsim_telemetry::CampaignProgress`] and/or a ledger writer.
pub fn run_campaign<F>(jobs: Vec<CampaignJob>, opts: &ExecutorOptions, on_done: F) -> Vec<JobResult>
where
    F: Fn(&JobResult) + Sync,
{
    run_campaign_supervised(jobs, opts, &SupervisorOptions::default(), on_done)
}

/// [`run_campaign`] with an explicit supervision policy (budgets, hang
/// detection, retries, quarantine). The default policy reproduces the
/// plain executor exactly: one inline attempt, fail fast.
pub fn run_campaign_supervised<F>(
    jobs: Vec<CampaignJob>,
    opts: &ExecutorOptions,
    sup: &SupervisorOptions,
    on_done: F,
) -> Vec<JobResult>
where
    F: Fn(&JobResult) + Sync,
{
    let workers = opts.workers.max(1).min(jobs.len().max(1));
    if workers == 1 {
        return jobs
            .into_iter()
            .map(|job| {
                let r = run_one(job, opts, sup);
                on_done(&r);
                r
            })
            .collect();
    }
    let mut results: Vec<Option<JobResult>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    let jobs_shared: Vec<Mutex<Option<CampaignJob>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let results_mutex = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs_shared.len() {
                    break;
                }
                let job = jobs_shared[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each job is claimed exactly once");
                let r = run_one(job, opts, sup);
                on_done(&r);
                results_mutex.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect()
}

/// Run plain scenarios through the campaign executor (no axes — job
/// names are the scenario names). This is how the bench binaries'
/// experiment grids ride the pool: build scenarios as before, execute
/// them here, get outcomes back in input order.
pub fn run_scenarios<F>(
    scenarios: &[Scenario],
    opts: &ExecutorOptions,
    on_done: F,
) -> Vec<JobResult>
where
    F: Fn(&JobResult) + Sync,
{
    let jobs = scenarios
        .iter()
        .map(|s| CampaignJob {
            name: s.name.clone(),
            axis: Vec::new(),
            seed: s.seed,
            scenario: s.clone(),
        })
        .collect();
    run_campaign(jobs, opts, on_done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim_core::FlowGroup;
    use ccsim_sim::Bandwidth;

    fn tiny(seed: u64) -> Scenario {
        let mut s = Scenario::edge_scale()
            .named(format!("tiny/seed={seed}"))
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                2,
                SimDuration::from_millis(20),
            )])
            .seed(seed);
        s.bottleneck = Bandwidth::from_mbps(10);
        s.buffer_bytes = 100_000;
        s.warmup = SimDuration::from_secs(1);
        s.duration = SimDuration::from_secs(4);
        s.start_jitter = SimDuration::from_millis(100);
        s.convergence = None;
        s
    }

    #[test]
    fn results_come_back_in_input_order() {
        let scenarios: Vec<Scenario> = (1..=4).map(tiny).collect();
        let opts = ExecutorOptions {
            workers: 4,
            ..ExecutorOptions::default()
        };
        let results = run_scenarios(&scenarios, &opts, |_| {});
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.job.seed, i as u64 + 1);
            assert!(r.run.is_ok(), "{:?}", r.run.as_ref().err());
        }
    }

    #[test]
    fn failed_jobs_surface_as_errors_not_panics() {
        // An invalid scenario (zero duration) fails inside the runner.
        let mut bad = tiny(1);
        bad.duration = SimDuration::from_secs(0);
        let jobs = vec![CampaignJob {
            name: "bad".into(),
            axis: Vec::new(),
            seed: 1,
            scenario: bad,
        }];
        let results = run_campaign(jobs, &ExecutorOptions::default(), |_| {});
        assert_eq!(results.len(), 1);
        let err = results[0].run.as_ref().unwrap_err();
        assert!(err.contains("duration"), "{err}");
        assert!(results[0].crash_bundle.is_none());
    }

    #[test]
    fn forced_panic_is_retried_then_quarantined() {
        let sup = SupervisorOptions {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            force_panic_jobs: Some("victim".into()),
            ..SupervisorOptions::default()
        };
        let jobs = vec![
            CampaignJob {
                name: "victim/seed=1".into(),
                axis: Vec::new(),
                seed: 1,
                scenario: tiny(1),
            },
            CampaignJob {
                name: "healthy/seed=2".into(),
                axis: Vec::new(),
                seed: 2,
                scenario: tiny(2),
            },
        ];
        let opts = ExecutorOptions {
            workers: 1,
            ..ExecutorOptions::default()
        };
        let results = run_campaign_supervised(jobs, &opts, &sup, |_| {});
        // The sabotaged job burned all three attempts and was
        // quarantined; the campaign still completed the healthy job.
        assert_eq!(results[0].attempts, 3);
        assert!(results[0].quarantined);
        let err = results[0].run.as_ref().unwrap_err();
        assert!(err.contains("forced panic"), "{err}");
        assert_eq!(results[1].attempts, 1);
        assert!(!results[1].quarantined);
        assert!(results[1].run.is_ok());
    }

    #[test]
    fn panic_payload_text_reaches_the_crash_bundle_manifest() {
        let dir = std::env::temp_dir().join(format!("ccsim-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sup = SupervisorOptions {
            force_panic_jobs: Some("victim".into()),
            ..SupervisorOptions::default()
        };
        let jobs = vec![CampaignJob {
            name: "victim/seed=1".into(),
            axis: Vec::new(),
            seed: 1,
            scenario: tiny(1),
        }];
        let opts = ExecutorOptions {
            workers: 1,
            crash_dir: Some(dir.clone()),
            ..ExecutorOptions::default()
        };
        let results = run_campaign_supervised(jobs, &opts, &sup, |_| {});
        let bundle = results[0].crash_bundle.as_ref().expect("bundle written");
        let manifest = std::fs::read_to_string(bundle.join("crash.json")).unwrap();
        // The panic payload text survives into the bundle manifest.
        assert!(manifest.contains("forced panic"), "{manifest}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hung_jobs_are_detected_and_quarantined_without_blocking() {
        let sup = SupervisorOptions {
            heartbeat_timeout: Some(Duration::from_millis(120)),
            max_retries: 1,
            backoff: Duration::from_millis(1),
            force_hang_jobs: Some("wedged".into()),
            ..SupervisorOptions::default()
        };
        let jobs = vec![
            CampaignJob {
                name: "wedged/seed=1".into(),
                axis: Vec::new(),
                seed: 1,
                scenario: tiny(1),
            },
            CampaignJob {
                name: "healthy/seed=2".into(),
                axis: Vec::new(),
                seed: 2,
                scenario: tiny(2),
            },
        ];
        let opts = ExecutorOptions {
            workers: 1,
            ..ExecutorOptions::default()
        };
        let start = Instant::now();
        let results = run_campaign_supervised(jobs, &opts, &sup, |_| {});
        assert_eq!(results[0].attempts, 2);
        assert!(results[0].quarantined);
        let err = results[0].run.as_ref().unwrap_err();
        assert!(err.contains("heartbeat"), "{err}");
        // A hang never produced a typed error, so no bundle either way.
        assert!(results[0].crash_bundle.is_none());
        assert!(results[1].run.is_ok());
        // The supervisor abandoned the wedged attempts instead of
        // waiting on them: the whole campaign finishes promptly.
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn wall_clock_budget_bounds_an_attempt() {
        let sup = SupervisorOptions {
            job_budget: Some(Duration::from_millis(1)),
            ..SupervisorOptions::default()
        };
        // Long enough that the run cannot beat the first supervisor poll.
        let mut slow = tiny(1);
        slow.duration = SimDuration::from_secs(120);
        let jobs = vec![CampaignJob {
            name: "slow/seed=1".into(),
            axis: Vec::new(),
            seed: 1,
            scenario: slow,
        }];
        let opts = ExecutorOptions {
            workers: 1,
            ..ExecutorOptions::default()
        };
        let results = run_campaign_supervised(jobs, &opts, &sup, |_| {});
        assert!(results[0].quarantined);
        let err = results[0].run.as_ref().unwrap_err();
        assert!(err.contains("budget"), "{err}");
    }

    #[test]
    fn rollup_reads_the_paper_metrics() {
        let results = run_scenarios(&[tiny(3)], &ExecutorOptions::default(), |_| {});
        let rollup = results[0].rollup().unwrap();
        assert!(rollup.utilization > 0.5);
        assert!(rollup.jfi.unwrap() > 0.5);
        assert_eq!(rollup.get("utilization"), Some(rollup.utilization));
        assert_eq!(rollup.get("jfi"), rollup.jfi);
        assert_eq!(rollup.get("nonsense"), None);
        // No trace configured: the sync index is absent, not invented.
        assert_eq!(rollup.sync_index, None);
        // No timeline configured: no convergence time either.
        assert_eq!(rollup.convergence_time, None);
    }

    #[test]
    fn timeline_option_fills_convergence_time_without_changing_digests() {
        let plain = run_scenarios(&[tiny(3)], &ExecutorOptions::default(), |_| {});
        let opts = ExecutorOptions {
            timeline: Some(TimelineConfig::default()),
            ..ExecutorOptions::default()
        };
        let timelined = run_scenarios(&[tiny(3)], &opts, |_| {});
        assert_eq!(plain[0].outcome_digest(), timelined[0].outcome_digest());

        let obs = timelined[0].run.as_ref().unwrap();
        let summary = obs.manifest.timeline.as_ref().expect("timeline summary");
        assert!(summary.rows > 0);
        let rollup = timelined[0].rollup().unwrap();
        assert_eq!(rollup.convergence_time, summary.time_to_alpha_fair);
        assert_eq!(rollup.get("convergence_time"), rollup.convergence_time);
        // Two fair Reno flows at equal RTT converge quickly: the rollup
        // actually carries a time, it is not vacuously None.
        assert!(rollup.convergence_time.is_some());
    }
}
