//! Campaign specifications: a scenario template × override axes × seeds.
//!
//! A [`CampaignSpec`] is the campaign layer's unit of configuration — the
//! simulator-side analogue of the paper's testbed orchestration scripts
//! (§3): one scenario template, a set of parameter axes to sweep, and a
//! seed list. Expansion is a plain cartesian product, so a spec with a
//! 3-value RTT axis, a 2-value CCA axis, and 2 seeds yields 12 jobs, each
//! a fully validated [`Scenario`] with a stable, human-readable name.
//!
//! Specs are JSON documents (hand-rolled on both sides, like every wire
//! format in the workspace — the vendored serde has no serializer) and
//! round-trip exactly: [`CampaignSpec::to_json`] → [`CampaignSpec::from_json`]
//! reproduces every field, including the embedded base scenario via
//! `ccsim_core::codec`. For hand-written specs the `base` object also
//! accepts a compact preset form (`{"preset": "edge", ...overrides}`) —
//! see [`CampaignSpec::from_json`].

use ccsim_cca::CcaKind;
use ccsim_core::{scenario_from_json, scenario_to_json, FlowGroup, Scenario};
use ccsim_fault::json::{escape, Json, JsonError};
use ccsim_net::AqmKind;
use ccsim_sim::jsonfmt::{json_f64, json_opt_f64};
use ccsim_sim::{Bandwidth, SimDuration};
use ccsim_topo::TopologyKind;
use std::fmt::Write as _;

/// A swept parameter: which scenario knob an axis overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisParam {
    /// Replace the CCA of every flow group (values: CCA names).
    Cca,
    /// Set the flow count of every group (values: u32 per group).
    FlowCount,
    /// Set the base RTT of every group (values: milliseconds).
    RttMs,
    /// Set the bottleneck bandwidth (values: Mbps).
    BwMbps,
    /// Set the drop-tail buffer (values: bytes).
    BufferBytes,
    /// Set the topology shape (values: [`TopologyKind`] names, e.g.
    /// "single", "dumbbell", "parking_lot:3").
    Topology,
    /// Set the default AQM discipline (values: [`AqmKind`] names).
    Aqm,
    /// Enable or disable ECN (values: "on"/"off" or "true"/"false").
    Ecn,
}

impl AxisParam {
    /// The spec-file name of this parameter.
    pub fn name(self) -> &'static str {
        match self {
            AxisParam::Cca => "cca",
            AxisParam::FlowCount => "flow_count",
            AxisParam::RttMs => "rtt_ms",
            AxisParam::BwMbps => "bw_mbps",
            AxisParam::BufferBytes => "buffer_bytes",
            AxisParam::Topology => "topology",
            AxisParam::Aqm => "aqm",
            AxisParam::Ecn => "ecn",
        }
    }

    fn parse(name: &str) -> Option<AxisParam> {
        Some(match name {
            "cca" => AxisParam::Cca,
            "flow_count" => AxisParam::FlowCount,
            "rtt_ms" => AxisParam::RttMs,
            "bw_mbps" => AxisParam::BwMbps,
            "buffer_bytes" => AxisParam::BufferBytes,
            "topology" => AxisParam::Topology,
            "aqm" => AxisParam::Aqm,
            "ecn" => AxisParam::Ecn,
            _ => return None,
        })
    }

    /// Apply one axis value to a scenario.
    fn apply(self, scenario: &mut Scenario, value: &str) -> Result<(), JsonError> {
        match self {
            AxisParam::Cca => {
                let cca: CcaKind = value
                    .parse()
                    .map_err(|_| bad(format!("axis cca: unknown CCA \"{value}\"")))?;
                for g in &mut scenario.flows {
                    g.cca = cca;
                }
            }
            AxisParam::FlowCount => {
                let count: u32 = value
                    .parse()
                    .map_err(|_| bad(format!("axis flow_count: bad count \"{value}\"")))?;
                for g in &mut scenario.flows {
                    g.count = count;
                }
            }
            AxisParam::RttMs => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| bad(format!("axis rtt_ms: bad value \"{value}\"")))?;
                for g in &mut scenario.flows {
                    g.base_rtt = SimDuration::from_millis(ms);
                }
            }
            AxisParam::BwMbps => {
                let mbps: u64 = value
                    .parse()
                    .map_err(|_| bad(format!("axis bw_mbps: bad value \"{value}\"")))?;
                scenario.bottleneck = Bandwidth::from_mbps(mbps);
            }
            AxisParam::BufferBytes => {
                scenario.buffer_bytes = value
                    .parse()
                    .map_err(|_| bad(format!("axis buffer_bytes: bad value \"{value}\"")))?;
            }
            AxisParam::Topology => {
                scenario.topology = TopologyKind::parse(value)
                    .ok_or_else(|| bad(format!("axis topology: unknown shape \"{value}\"")))?;
            }
            AxisParam::Aqm => {
                scenario.aqm = AqmKind::parse(value)
                    .ok_or_else(|| bad(format!("axis aqm: unknown discipline \"{value}\"")))?;
            }
            AxisParam::Ecn => {
                scenario.ecn = match value {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    _ => return Err(bad(format!("axis ecn: bad value \"{value}\""))),
                };
            }
        }
        Ok(())
    }
}

/// One sweep axis: a parameter and the values it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    pub param: AxisParam,
    /// Values as strings (the JSON form; numbers keep their raw text).
    pub values: Vec<String>,
}

/// A fidelity expectation for a campaign metric, checked by the reporter
/// against the mean over all successful runs. `source` names the paper
/// artifact the range comes from (e.g. "Figure 4").
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// Rollup metric name (see `Rollup::get`): "jfi", "utilization",
    /// "loss_rate", "mathis_err", "sync_index", "drop_burstiness",
    /// "share_a", "events_per_sec".
    pub metric: String,
    pub min: Option<f64>,
    pub max: Option<f64>,
    pub source: String,
}

/// Drift tolerances the regression sentinel (`campaign diff`) applies
/// when comparing two ledgers of the same campaign. Stored in the ledger
/// header so a baseline carries its own thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Maximum absolute JFI drift between runs of the same config.
    pub jfi: f64,
    /// Maximum absolute Mathis median-error drift.
    pub mathis_err: f64,
    /// Maximum absolute synchronization-index drift.
    pub sync_index: f64,
    /// Maximum fractional events/sec regression (0.10 = 10% slower).
    pub events_per_sec_frac: f64,
    /// Maximum absolute time-to-α-fair drift, seconds of sim time
    /// (compared only when both ledgers carried timeline captures).
    pub convergence_secs: f64,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances {
            jfi: 0.05,
            mathis_err: 0.10,
            sync_index: 0.10,
            events_per_sec_frac: 0.10,
            convergence_secs: 1.0,
        }
    }
}

/// A complete campaign description. See the module docs.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (prefixes every job name and the ledger header).
    pub name: String,
    /// The scenario template every job starts from.
    pub base: Scenario,
    /// Sweep axes, expanded as a cartesian product in order.
    pub axes: Vec<Axis>,
    /// Master seeds; every axis combination runs once per seed.
    pub seeds: Vec<u64>,
    /// Fidelity expectations for the reporter.
    pub expectations: Vec<Expectation>,
    /// Sentinel tolerances for `campaign diff`.
    pub tolerances: Tolerances,
}

/// One expanded job: a named, validated scenario plus the axis values
/// that produced it.
#[derive(Debug, Clone)]
pub struct CampaignJob {
    /// Stable job name: `{campaign}/{param}={value}/.../seed={seed}`.
    pub name: String,
    /// The (param, value) pairs this job was expanded from.
    pub axis: Vec<(String, String)>,
    /// Master seed.
    pub seed: u64,
    /// The fully built scenario (named after the job, seeded).
    pub scenario: Scenario,
}

fn bad(message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: message.into(),
    }
}

impl CampaignSpec {
    /// Expand the spec into its full job list (cartesian product of axes
    /// × seeds), validating every resulting scenario.
    pub fn jobs(&self) -> Result<Vec<CampaignJob>, JsonError> {
        if self.seeds.is_empty() {
            return Err(bad("campaign has no seeds"));
        }
        let mut combos: Vec<Vec<(String, String)>> = vec![Vec::new()];
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(bad(format!("axis {} has no values", axis.param.name())));
            }
            let mut next = Vec::with_capacity(combos.len() * axis.values.len());
            for combo in &combos {
                for value in &axis.values {
                    let mut c = combo.clone();
                    c.push((axis.param.name().to_string(), value.clone()));
                    next.push(c);
                }
            }
            combos = next;
        }
        let mut jobs = Vec::with_capacity(combos.len() * self.seeds.len());
        for combo in &combos {
            for &seed in &self.seeds {
                let mut name = self.name.clone();
                let mut scenario = self.base.clone();
                for (param, value) in combo {
                    let _ = write!(name, "/{param}={value}");
                    AxisParam::parse(param)
                        .expect("combo params come from AxisParam::name")
                        .apply(&mut scenario, value)?;
                }
                let _ = write!(name, "/seed={seed}");
                scenario = scenario.named(name.clone()).seed(seed);
                scenario
                    .validate()
                    .map_err(|e| bad(format!("job {name}: invalid scenario: {e}")))?;
                jobs.push(CampaignJob {
                    name,
                    axis: combo.clone(),
                    seed,
                    scenario,
                });
            }
        }
        Ok(jobs)
    }

    /// Serialize to the canonical single-line JSON form (base scenario in
    /// its full `ccsim_core::codec` form). Round-trips through
    /// [`CampaignSpec::from_json`] exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"base\":{},\"axes\":[",
            escape(&self.name),
            scenario_to_json(&self.base)
        );
        for (i, axis) in self.axes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let values: Vec<String> = axis
                .values
                .iter()
                .map(|v| format!("\"{}\"", escape(v)))
                .collect();
            let _ = write!(
                out,
                "{{\"param\":\"{}\",\"values\":[{}]}}",
                axis.param.name(),
                values.join(",")
            );
        }
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let _ = write!(out, "],\"seeds\":[{}],\"expectations\":[", seeds.join(","));
        for (i, e) in self.expectations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"metric\":\"{}\",\"min\":{},\"max\":{},\"source\":\"{}\"}}",
                escape(&e.metric),
                json_opt_f64(e.min),
                json_opt_f64(e.max),
                escape(&e.source)
            );
        }
        let t = &self.tolerances;
        let _ = write!(
            out,
            "],\"tolerances\":{{\"jfi\":{},\"mathis_err\":{},\"sync_index\":{},\
             \"events_per_sec_frac\":{},\"convergence_secs\":{}}}}}",
            json_f64(t.jfi),
            json_f64(t.mathis_err),
            json_f64(t.sync_index),
            json_f64(t.events_per_sec_frac),
            json_f64(t.convergence_secs)
        );
        out
    }

    /// Parse a spec document.
    ///
    /// The `base` object is either a full scenario document (recognized
    /// by its `bottleneck_bps` field — the `ccsim_core::codec` form) or
    /// the compact preset form for hand-written specs:
    ///
    /// ```json
    /// {
    ///   "preset": "edge",
    ///   "bw_mbps": 10, "buffer_bytes": 100000,
    ///   "flows": [{"cca": "reno", "count": 2, "rtt_ms": 20}],
    ///   "fidelity": "quick",
    ///   "warmup_s": 1.0, "duration_s": 4.0, "jitter_s": 0.1,
    ///   "convergence": false
    /// }
    /// ```
    pub fn from_json(text: &str) -> Result<CampaignSpec, JsonError> {
        let doc = Json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing campaign \"name\""))?
            .to_string();
        let base_json = doc.get("base").ok_or_else(|| bad("missing \"base\""))?;
        let base = if base_json.get("bottleneck_bps").is_some() {
            scenario_from_json(&base_json.render())?
        } else {
            base_from_preset(base_json)?
        };

        let mut axes = Vec::new();
        if let Some(list) = doc.get("axes").and_then(Json::as_arr) {
            for a in list {
                let pname = a
                    .get("param")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("axis missing \"param\""))?;
                let param = AxisParam::parse(pname)
                    .ok_or_else(|| bad(format!("unknown axis param \"{pname}\"")))?;
                let values = a
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad(format!("axis {pname} missing \"values\"")))?
                    .iter()
                    .map(|v| match v {
                        Json::Str(s) => Ok(s.clone()),
                        Json::Num(raw) => Ok(raw.clone()),
                        _ => Err(bad(format!("axis {pname}: bad value"))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                axes.push(Axis { param, values });
            }
        }

        let seeds = match doc.get("seeds").and_then(Json::as_arr) {
            Some(list) => list
                .iter()
                .map(|v| v.as_u64().ok_or_else(|| bad("bad seed")))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![base.seed],
        };

        let mut expectations = Vec::new();
        if let Some(list) = doc.get("expectations").and_then(Json::as_arr) {
            for e in list {
                expectations.push(Expectation {
                    metric: e
                        .get("metric")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("expectation missing \"metric\""))?
                        .to_string(),
                    min: e.get("min").and_then(Json::as_f64),
                    max: e.get("max").and_then(Json::as_f64),
                    source: e
                        .get("source")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                });
            }
        }

        let tolerances = parse_tolerances(doc.get("tolerances"));
        Ok(CampaignSpec {
            name,
            base,
            axes,
            seeds,
            expectations,
            tolerances,
        })
    }
}

/// Parse a tolerances object, falling back to defaults per field.
pub fn parse_tolerances(v: Option<&Json>) -> Tolerances {
    let d = Tolerances::default();
    let Some(v) = v else { return d };
    let get = |key: &str, fallback: f64| v.get(key).and_then(Json::as_f64).unwrap_or(fallback);
    Tolerances {
        jfi: get("jfi", d.jfi),
        mathis_err: get("mathis_err", d.mathis_err),
        sync_index: get("sync_index", d.sync_index),
        events_per_sec_frac: get("events_per_sec_frac", d.events_per_sec_frac),
        convergence_secs: get("convergence_secs", d.convergence_secs),
    }
}

fn base_from_preset(v: &Json) -> Result<Scenario, JsonError> {
    let mut s = match v.get("preset").and_then(Json::as_str).unwrap_or("edge") {
        "edge" => Scenario::edge_scale(),
        "core" => Scenario::core_scale(),
        "mega" => Scenario::mega_scale(),
        other => return Err(bad(format!("unknown preset \"{other}\""))),
    };
    if let Some(f) = v.get("fidelity").and_then(Json::as_str) {
        s = s.fidelity(match f {
            "quick" => ccsim_core::Fidelity::Quick,
            "standard" => ccsim_core::Fidelity::Standard,
            "paper" => ccsim_core::Fidelity::Paper,
            other => return Err(bad(format!("unknown fidelity \"{other}\""))),
        });
    }
    if let Some(mbps) = v.get("bw_mbps").and_then(Json::as_u64) {
        s.bottleneck = Bandwidth::from_mbps(mbps);
    }
    if let Some(bytes) = v.get("buffer_bytes").and_then(Json::as_u64) {
        s.buffer_bytes = bytes;
    }
    if let Some(secs) = v.get("warmup_s").and_then(Json::as_f64) {
        s.warmup = SimDuration::from_secs_f64(secs);
    }
    if let Some(secs) = v.get("duration_s").and_then(Json::as_f64) {
        s.duration = SimDuration::from_secs_f64(secs);
    }
    if let Some(secs) = v.get("jitter_s").and_then(Json::as_f64) {
        s.start_jitter = SimDuration::from_secs_f64(secs);
    }
    if let Some(ms) = v.get("snapshot_ms").and_then(Json::as_u64) {
        s.snapshot_interval = SimDuration::from_millis(ms);
    }
    if v.get("convergence").and_then(Json::as_bool) == Some(false) {
        s.convergence = None;
    }
    if let Some(n) = v.get("delack_segments").and_then(Json::as_u64) {
        s.tuning.delack_segments = n as u32;
    }
    if let Some(n) = v.get("tx_burst").and_then(Json::as_u64) {
        s.tuning.tx_burst = n as u32;
    }
    if let Some(name) = v.get("topology").and_then(Json::as_str) {
        s.topology =
            TopologyKind::parse(name).ok_or_else(|| bad(format!("unknown topology \"{name}\"")))?;
    }
    if let Some(name) = v.get("aqm").and_then(Json::as_str) {
        s.aqm = AqmKind::parse(name).ok_or_else(|| bad(format!("unknown aqm \"{name}\"")))?;
    }
    if let Some(on) = v.get("ecn").and_then(Json::as_bool) {
        s.ecn = on;
    }
    if let Some(groups) = v.get("flows").and_then(Json::as_arr) {
        let mut flows = Vec::with_capacity(groups.len());
        for g in groups {
            let cca: CcaKind = g
                .get("cca")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("flow group missing \"cca\""))?
                .parse()
                .map_err(|_| bad("unknown CCA in flow group"))?;
            let count = g
                .get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("flow group missing \"count\""))? as u32;
            let rtt_ms = g
                .get("rtt_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("flow group missing \"rtt_ms\""))?;
            flows.push(FlowGroup::new(cca, count, SimDuration::from_millis(rtt_ms)));
        }
        s = s.flows(flows);
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> CampaignSpec {
        let mut base = Scenario::edge_scale()
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                2,
                SimDuration::from_millis(20),
            )])
            .fidelity(ccsim_core::Fidelity::Quick);
        base.bottleneck = Bandwidth::from_mbps(10);
        base.buffer_bytes = 100_000;
        CampaignSpec {
            name: "smoke".into(),
            base,
            axes: vec![
                Axis {
                    param: AxisParam::Cca,
                    values: vec!["reno".into(), "cubic".into()],
                },
                Axis {
                    param: AxisParam::RttMs,
                    values: vec!["20".into(), "100".into()],
                },
            ],
            seeds: vec![1, 2],
            expectations: vec![Expectation {
                metric: "jfi".into(),
                min: Some(0.8),
                max: None,
                source: "Figure 4".into(),
            }],
            tolerances: Tolerances::default(),
        }
    }

    #[test]
    fn expansion_is_the_cartesian_product() {
        let jobs = sample_spec().jobs().unwrap();
        assert_eq!(jobs.len(), 2 * 2 * 2);
        // First job: first value of each axis, first seed; names are stable.
        assert_eq!(jobs[0].name, "smoke/cca=reno/rtt_ms=20/seed=1");
        assert_eq!(jobs[0].scenario.seed, 1);
        assert_eq!(jobs[0].scenario.flows[0].cca, CcaKind::Reno);
        let last = jobs.last().unwrap();
        assert_eq!(last.name, "smoke/cca=cubic/rtt_ms=100/seed=2");
        assert_eq!(last.scenario.flows[0].cca, CcaKind::Cubic);
        assert_eq!(
            last.scenario.flows[0].base_rtt,
            SimDuration::from_millis(100)
        );
        // All job names are unique.
        let mut names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), jobs.len());
    }

    #[test]
    fn json_round_trips() {
        let spec = sample_spec();
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(format!("{spec:?}"), format!("{back:?}"));
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn preset_base_form_parses() {
        let doc = r#"{
            "name": "preset-test",
            "base": {
                "preset": "edge", "bw_mbps": 10, "buffer_bytes": 100000,
                "flows": [{"cca": "reno", "count": 2, "rtt_ms": 20}],
                "fidelity": "quick", "warmup_s": 1.0, "duration_s": 4.0,
                "jitter_s": 0.1, "convergence": false
            },
            "axes": [{"param": "cca", "values": ["reno", "cubic"]}],
            "seeds": [7]
        }"#;
        let spec = CampaignSpec::from_json(doc).unwrap();
        assert_eq!(spec.base.bottleneck, Bandwidth::from_mbps(10));
        assert_eq!(spec.base.duration, SimDuration::from_secs(4));
        assert_eq!(spec.base.convergence, None);
        let jobs = spec.jobs().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].seed, 7);
    }

    #[test]
    fn mega_preset_parses_with_tuning_overrides() {
        let doc = r#"{
            "name": "mega-test",
            "base": {
                "preset": "mega",
                "flows": [{"cca": "reno", "count": 1000, "rtt_ms": 20}],
                "delack_segments": 8, "tx_burst": 16
            }
        }"#;
        let spec = CampaignSpec::from_json(doc).unwrap();
        assert_eq!(spec.base.bottleneck, Bandwidth::from_gbps(100));
        assert_eq!(spec.base.tuning.delack_segments, 8);
        assert_eq!(spec.base.tuning.tx_burst, 16);
        // The batching knobs survive the spec's own JSON round trip
        // (the base re-encodes through the scenario codec).
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.base.tuning, spec.base.tuning);
    }

    #[test]
    fn topology_aqm_and_ecn_axes_expand_onto_the_scenario() {
        let mut spec = sample_spec();
        spec.axes = vec![
            Axis {
                param: AxisParam::Topology,
                values: vec!["single".into(), "parking_lot:3".into()],
            },
            Axis {
                param: AxisParam::Aqm,
                values: vec!["droptail".into(), "codel".into()],
            },
            Axis {
                param: AxisParam::Ecn,
                values: vec!["off".into(), "on".into()],
            },
        ];
        spec.seeds = vec![1];
        let jobs = spec.jobs().unwrap();
        assert_eq!(jobs.len(), 2 * 2 * 2);
        let last = jobs.last().unwrap();
        assert_eq!(
            last.name,
            "smoke/topology=parking_lot:3/aqm=codel/ecn=on/seed=1"
        );
        assert_eq!(last.scenario.topology, TopologyKind::ParkingLot(3));
        assert_eq!(last.scenario.aqm, AqmKind::Codel);
        assert!(last.scenario.ecn);
        assert_eq!(jobs[0].scenario.topology, TopologyKind::SingleBottleneck);
        assert!(!jobs[0].scenario.ecn);
        // The names round-trip through the spec JSON form.
        let back = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.axes, spec.axes);
        // Bad values are rejected with the axis name.
        let err = AxisParam::Topology
            .apply(&mut spec.base.clone(), "torus")
            .unwrap_err();
        assert!(err.message.contains("topology"), "{err}");
    }

    #[test]
    fn invalid_jobs_are_rejected_with_their_name() {
        let mut spec = sample_spec();
        spec.axes.push(Axis {
            param: AxisParam::FlowCount,
            values: vec!["0".into()],
        });
        let err = spec.jobs().unwrap_err();
        assert!(err.message.contains("no flows"), "{err}");
        assert!(err.message.contains("flow_count=0"), "{err}");
    }

    #[test]
    fn empty_seed_list_is_an_error() {
        let mut spec = sample_spec();
        spec.seeds.clear();
        assert!(spec.jobs().is_err());
    }
}
