//! Campaign layer: parallel sweep executor, persistent run ledger,
//! regression sentinel, and fidelity reports.
//!
//! This crate is the simulator-side analogue of the paper's testbed
//! orchestration (§3): where the authors drove a 10-node testbed through
//! thousands of (CCA, flow count, RTT, buffer) combinations and archived
//! the results for cross-cutting analysis, `ccsim campaign` expands a
//! [`CampaignSpec`] into a validated job grid, runs it on a worker pool
//! over the observed-run path, and appends every result to an append-only
//! JSONL [`Ledger`]. Ledgers are then the unit of comparison:
//! [`diff::diff`] is the regression sentinel (determinism breaks,
//! fidelity drift, events/sec regressions) and [`report::markdown`] /
//! [`report::html`] render the fidelity report mapping results back to
//! the paper's Table 1 and Figures 2–8.
//!
//! Determinism contract: outcomes depend only on (configuration, seed),
//! so a campaign run with 8 workers is byte-identical — per-run outcome
//! digests and normalized ledger lines — to the same campaign run
//! serially. The integration tests enforce this.

pub mod diff;
pub mod executor;
pub mod ledger;
pub mod report;
pub mod spec;

pub use diff::{diff, DiffOptions, DiffReport, Finding, FindingKind};
pub use executor::{
    run_campaign, run_campaign_supervised, run_scenarios, ExecutorOptions, JobResult, Rollup,
    SupervisorOptions,
};
pub use ledger::{Ledger, LedgerEntry, LedgerWriter};
pub use report::{check_expectations, ExpectationResult};
pub use spec::{Axis, AxisParam, CampaignJob, CampaignSpec, Expectation, Tolerances};
