//! The persistent run ledger: one append-only JSONL file per campaign.
//!
//! Line 1 is a header (`ccsim-ledger/1` format tag, campaign name,
//! sentinel tolerances, expectations); every following line is one
//! enriched run record: job name and axis values, config and outcome
//! digests, wall/sim time, the per-run metric [`Rollup`], the full
//! provenance manifest, and a crash-bundle pointer on failure.
//!
//! Durability: [`LedgerWriter::append`] flushes after every line, so a
//! campaign killed mid-run leaves at worst one truncated final line.
//! [`Ledger::load`] detects that case (the *last* line failing to parse),
//! skips it, and sets [`Ledger::truncated`] instead of failing — interior
//! corruption, by contrast, is a hard error. The regression sentinel
//! (`campaign diff`) indexes entries by config digest via
//! [`Ledger::by_config`].

use crate::executor::{JobResult, Rollup};
use crate::spec::{parse_tolerances, Expectation, Tolerances};
use ccsim_core::BottleneckMetrics;
use ccsim_fault::json::{escape, Json, JsonError};
use ccsim_sim::jsonfmt::{json_f64, json_opt_f64};
use ccsim_telemetry::RunManifest;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Format tag of the ledger header line.
pub const LEDGER_FORMAT: &str = "ccsim-ledger/1";

/// One run record.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Job name (`{campaign}/{param}={value}/.../seed={seed}`).
    pub job: String,
    /// The axis values the job was expanded from.
    pub axis: Vec<(String, String)>,
    /// Master seed.
    pub seed: u64,
    /// Scenario config digest, 16 hex digits.
    pub config_digest: String,
    /// Outcome digest, 16 hex digits; `None` for failed runs.
    pub outcome_digest: Option<String>,
    /// Error message for failed runs.
    pub error: Option<String>,
    /// Crash-bundle directory for failed runs, when one was written.
    pub crash_bundle: Option<String>,
    /// Attempts the supervisor spent on the job. 1 (and absent from the
    /// JSON, so legacy lines re-serialize byte-identically) when the
    /// first attempt settled it.
    pub attempts: u32,
    /// The job failed every attempt and was quarantined. False (and
    /// absent from the JSON) for successful or pre-supervisor entries.
    pub quarantined: bool,
    /// Simulated seconds covered.
    pub sim_secs: f64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Engine events processed.
    pub events_processed: u64,
    /// Engine events per wall-clock second.
    pub events_per_sec: f64,
    /// Engine events per *dispatch* second split by classified kind
    /// (`data`/`ack`/`timer`), from the manifest's per-kind counts. The
    /// sentinel gates per-kind throughput regressions on this. Empty (and
    /// absent from the JSON, so legacy lines re-serialize byte-identically)
    /// for failed or pre-profiler runs.
    pub eps_by_kind: Vec<(String, f64)>,
    /// Paper-metric rollup; `None` for failed runs.
    pub metrics: Option<Rollup>,
    /// Full provenance manifest; `None` for failed runs.
    pub manifest: Option<RunManifest>,
}

impl LedgerEntry {
    /// Whether the run completed.
    pub fn ok(&self) -> bool {
        self.outcome_digest.is_some()
    }

    /// Build the entry for one executed job.
    pub fn from_result(r: &JobResult) -> LedgerEntry {
        let (outcome_digest, error) = match &r.run {
            Ok(obs) => (Some(format!("{:016x}", obs.outcome.digest())), None),
            Err(e) => (None, Some(e.clone())),
        };
        let manifest = r.run.as_ref().ok().map(|obs| obs.manifest.clone());
        let (sim_secs, wall_secs, events_processed, events_per_sec) = manifest
            .as_ref()
            .map(|m| {
                (
                    m.sim_secs,
                    m.wall_secs,
                    m.events_processed,
                    m.events_per_sec,
                )
            })
            .unwrap_or((0.0, 0.0, 0, 0.0));
        let eps_by_kind = manifest.as_ref().map_or(Vec::new(), |m| m.eps_by_kind());
        LedgerEntry {
            job: r.job.name.clone(),
            axis: r.job.axis.clone(),
            seed: r.job.seed,
            config_digest: format!("{:016x}", r.config_digest),
            outcome_digest,
            error,
            crash_bundle: r.crash_bundle.as_ref().map(|p| p.display().to_string()),
            attempts: r.attempts,
            quarantined: r.quarantined,
            sim_secs,
            wall_secs,
            events_processed,
            events_per_sec,
            eps_by_kind,
            metrics: r.rollup(),
            manifest,
        }
    }

    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(out, "{{\"job\":\"{}\",\"axis\":{{", escape(&self.job));
        for (i, (param, value)) in self.axis.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(param), escape(value));
        }
        let _ = write!(
            out,
            "}},\"seed\":{},\"config_digest\":\"{}\",\"outcome_digest\":{},\"error\":{},\
             \"crash_bundle\":{},\"sim_secs\":{},\"wall_secs\":{},\"events_processed\":{},\
             \"events_per_sec\":{}",
            self.seed,
            self.config_digest,
            match &self.outcome_digest {
                Some(d) => format!("\"{d}\""),
                None => "null".into(),
            },
            match &self.error {
                Some(e) => format!("\"{}\"", escape(e)),
                None => "null".into(),
            },
            match &self.crash_bundle {
                Some(p) => format!("\"{}\"", escape(p)),
                None => "null".into(),
            },
            json_f64(self.sim_secs),
            json_f64(self.wall_secs),
            self.events_processed,
            json_f64(self.events_per_sec),
        );
        // Supervisor fields are absent at their defaults so legacy lines
        // and unsupervised runs re-serialize byte-identically.
        if self.attempts != 1 {
            let _ = write!(out, ",\"attempts\":{}", self.attempts);
        }
        if self.quarantined {
            out.push_str(",\"quarantined\":true");
        }
        // Absent (not `{}`) for legacy and unprofiled runs so old ledger
        // lines re-serialize byte-identically.
        if !self.eps_by_kind.is_empty() {
            out.push_str(",\"eps_by_kind\":{");
            for (i, (kind, eps)) in self.eps_by_kind.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", escape(kind), json_f64(*eps));
            }
            out.push('}');
        }
        match &self.metrics {
            None => out.push_str(",\"metrics\":null"),
            Some(m) => {
                let _ = write!(
                    out,
                    ",\"metrics\":{{\"jfi\":{},\"utilization\":{},\"aggregate_mbps\":{},\
                     \"loss_rate\":{},\"mathis_err\":{},\"sync_index\":{},\
                     \"drop_burstiness\":{},\"share_a\":{}",
                    json_opt_f64(m.jfi),
                    json_f64(m.utilization),
                    json_f64(m.aggregate_mbps),
                    json_f64(m.loss_rate),
                    json_opt_f64(m.mathis_err),
                    json_opt_f64(m.sync_index),
                    json_opt_f64(m.drop_burstiness),
                    json_opt_f64(m.share_a),
                );
                // Absent (not `null`) for runs without a timeline capture
                // so legacy ledger lines re-serialize byte-identically.
                if let Some(ct) = m.convergence_time {
                    let _ = write!(out, ",\"convergence_time\":{}", json_f64(ct));
                }
                // The key is absent (not `[]`) for legacy runs so old
                // ledger lines re-serialize byte-identically.
                if !m.bottlenecks.is_empty() {
                    out.push_str(",\"bottlenecks\":[");
                    for (i, b) in m.bottlenecks.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "{{\"link\":{},\"label\":\"{}\",\"utilization\":{},\"jfi\":{},\
                             \"loss_rate\":{},\"max_queue_bytes\":{},\"ce_marked\":{}}}",
                            b.link,
                            escape(&b.label),
                            json_f64(b.utilization),
                            json_opt_f64(b.jfi),
                            json_f64(b.loss_rate),
                            b.max_queue_bytes,
                            b.ce_marked_pkts,
                        );
                    }
                    out.push(']');
                }
                out.push('}');
            }
        }
        match &self.manifest {
            None => out.push_str(",\"manifest\":null}"),
            Some(m) => {
                let _ = write!(out, ",\"manifest\":{}}}", m.to_json_inline());
            }
        }
        out
    }

    /// Parse a line produced by [`LedgerEntry::to_json`].
    pub fn from_value(v: &Json) -> Result<LedgerEntry, JsonError> {
        let get_str = |key: &str| -> Result<String, JsonError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("entry missing \"{key}\"")))
        };
        let opt_str =
            |key: &str| -> Option<String> { v.get(key).and_then(Json::as_str).map(str::to_string) };
        let axis = match v.get("axis") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| bad("non-string axis value"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        let metrics = match v.get("metrics") {
            Some(m) if !m.is_null() => {
                let f = |key: &str| m.get(key).and_then(Json::as_f64);
                let mut bottlenecks = Vec::new();
                if let Some(list) = m.get("bottlenecks").and_then(Json::as_arr) {
                    for b in list {
                        bottlenecks.push(BottleneckMetrics {
                            link: b.get("link").and_then(Json::as_u64).unwrap_or(0) as u32,
                            label: b
                                .get("label")
                                .and_then(Json::as_str)
                                .unwrap_or("")
                                .to_string(),
                            utilization: b
                                .get("utilization")
                                .and_then(Json::as_f64)
                                .ok_or_else(|| bad("bottleneck.utilization"))?,
                            jfi: b.get("jfi").and_then(Json::as_f64),
                            loss_rate: b
                                .get("loss_rate")
                                .and_then(Json::as_f64)
                                .ok_or_else(|| bad("bottleneck.loss_rate"))?,
                            max_queue_bytes: b
                                .get("max_queue_bytes")
                                .and_then(Json::as_u64)
                                .unwrap_or(0),
                            ce_marked_pkts: b.get("ce_marked").and_then(Json::as_u64).unwrap_or(0),
                        });
                    }
                }
                Some(Rollup {
                    jfi: f("jfi"),
                    utilization: f("utilization").ok_or_else(|| bad("metrics.utilization"))?,
                    aggregate_mbps: f("aggregate_mbps")
                        .ok_or_else(|| bad("metrics.aggregate_mbps"))?,
                    loss_rate: f("loss_rate").ok_or_else(|| bad("metrics.loss_rate"))?,
                    mathis_err: f("mathis_err"),
                    sync_index: f("sync_index"),
                    drop_burstiness: f("drop_burstiness"),
                    share_a: f("share_a"),
                    convergence_time: f("convergence_time"),
                    bottlenecks,
                })
            }
            _ => None,
        };
        let manifest = match v.get("manifest") {
            // The manifest parser is substring-based; re-render the node.
            Some(m) if !m.is_null() => Some(
                RunManifest::from_json(&m.render())
                    .map_err(|e| bad(format!("bad embedded manifest: {e}")))?,
            ),
            _ => None,
        };
        let eps_by_kind = match v.get("eps_by_kind") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, val)| {
                    val.as_f64()
                        .map(|eps| (k.clone(), eps))
                        .ok_or_else(|| bad("non-numeric eps_by_kind value"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(LedgerEntry {
            job: get_str("job")?,
            axis,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("entry missing \"seed\""))?,
            config_digest: get_str("config_digest")?,
            outcome_digest: opt_str("outcome_digest"),
            error: opt_str("error"),
            crash_bundle: opt_str("crash_bundle"),
            attempts: v.get("attempts").and_then(Json::as_u64).unwrap_or(1) as u32,
            quarantined: v
                .get("quarantined")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            sim_secs: v.get("sim_secs").and_then(Json::as_f64).unwrap_or(0.0),
            wall_secs: v.get("wall_secs").and_then(Json::as_f64).unwrap_or(0.0),
            events_processed: v
                .get("events_processed")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            events_per_sec: v
                .get("events_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            eps_by_kind,
            metrics,
            manifest,
        })
    }

    /// A copy with every wall-clock-dependent field zeroed — the stable
    /// projection two runs of the same campaign can be compared on
    /// byte-for-byte (the parallel-vs-serial equivalence tests use this).
    pub fn normalized(&self) -> LedgerEntry {
        let mut e = self.clone();
        e.wall_secs = 0.0;
        e.events_per_sec = 0.0;
        for (_, eps) in &mut e.eps_by_kind {
            *eps = 0.0;
        }
        if let Some(m) = &mut e.manifest {
            m.wall_secs = 0.0;
            m.dispatch_secs = 0.0;
            m.sim_wall_ratio = 0.0;
            m.events_per_sec = 0.0;
            // The metrics dump embeds wall-clock gauges, so its byte
            // length is timing-dependent too.
            m.metric_bytes = 0;
            // Profile event/kind counts, wheel counters, and memory
            // gauges are deterministic; only the sampled nanos and the
            // dispatch total are wall time.
            if let Some(p) = &mut m.profile {
                *p = p.normalized();
            }
        }
        e
    }
}

fn bad(message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: message.into(),
    }
}

/// A loaded ledger: header fields plus the entry list.
#[derive(Debug, Clone)]
pub struct Ledger {
    /// Campaign name from the header.
    pub campaign: String,
    /// Sentinel tolerances from the header.
    pub tolerances: Tolerances,
    /// Fidelity expectations from the header.
    pub expectations: Vec<Expectation>,
    /// Run records, in file (completion) order.
    pub entries: Vec<LedgerEntry>,
    /// Whether a truncated final line was detected and skipped.
    pub truncated: bool,
}

/// Render the header line for a campaign.
pub fn header_json(
    campaign: &str,
    tolerances: &Tolerances,
    expectations: &[Expectation],
) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"ledger\":\"{LEDGER_FORMAT}\",\"campaign\":\"{}\",\"tolerances\":{{\"jfi\":{},\
         \"mathis_err\":{},\"sync_index\":{},\"events_per_sec_frac\":{},\
         \"convergence_secs\":{}}},\"expectations\":[",
        escape(campaign),
        json_f64(tolerances.jfi),
        json_f64(tolerances.mathis_err),
        json_f64(tolerances.sync_index),
        json_f64(tolerances.events_per_sec_frac),
        json_f64(tolerances.convergence_secs),
    );
    for (i, e) in expectations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"metric\":\"{}\",\"min\":{},\"max\":{},\"source\":\"{}\"}}",
            escape(&e.metric),
            json_opt_f64(e.min),
            json_opt_f64(e.max),
            escape(&e.source)
        );
    }
    out.push_str("]}");
    out
}

impl Ledger {
    /// An empty in-memory ledger for a campaign.
    pub fn new(campaign: impl Into<String>, tolerances: Tolerances) -> Ledger {
        Ledger {
            campaign: campaign.into(),
            tolerances,
            expectations: Vec::new(),
            entries: Vec::new(),
            truncated: false,
        }
    }

    /// Parse a full ledger document from text (see [`Ledger::load`]).
    pub fn from_text(text: &str) -> io::Result<Ledger> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines
            .next()
            .ok_or_else(|| invalid("empty ledger (no header line)"))?;
        let header =
            Json::parse(header_line).map_err(|e| invalid(format!("bad ledger header: {e}")))?;
        let format = header.get("ledger").and_then(Json::as_str).unwrap_or("");
        if format != LEDGER_FORMAT {
            return Err(invalid(format!(
                "unsupported ledger format \"{format}\" (want \"{LEDGER_FORMAT}\")"
            )));
        }
        let campaign = header
            .get("campaign")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let tolerances = parse_tolerances(header.get("tolerances"));
        let mut expectations = Vec::new();
        if let Some(list) = header.get("expectations").and_then(Json::as_arr) {
            for e in list {
                expectations.push(Expectation {
                    metric: e
                        .get("metric")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    min: e.get("min").and_then(Json::as_f64),
                    max: e.get("max").and_then(Json::as_f64),
                    source: e
                        .get("source")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                });
            }
        }

        let body: Vec<&str> = lines.collect();
        let mut entries = Vec::with_capacity(body.len());
        let mut truncated = false;
        for (i, line) in body.iter().enumerate() {
            let parsed = Json::parse(line).and_then(|v| LedgerEntry::from_value(&v));
            match parsed {
                Ok(entry) => entries.push(entry),
                Err(e) if i + 1 == body.len() => {
                    // A killed campaign leaves at worst one torn final
                    // line; skip it and flag the ledger as truncated.
                    let _ = e;
                    truncated = true;
                }
                Err(e) => {
                    return Err(invalid(format!(
                        "corrupt ledger entry on line {}: {e}",
                        i + 2
                    )))
                }
            }
        }
        Ok(Ledger {
            campaign,
            tolerances,
            expectations,
            entries,
            truncated,
        })
    }

    /// Load a ledger file, tolerating a truncated final line.
    pub fn load(path: &Path) -> io::Result<Ledger> {
        Ledger::from_text(&std::fs::read_to_string(path)?)
    }

    /// Index entries by config digest (first entry per digest wins).
    pub fn by_config(&self) -> HashMap<&str, &LedgerEntry> {
        let mut map = HashMap::with_capacity(self.entries.len());
        for e in &self.entries {
            map.entry(e.config_digest.as_str()).or_insert(e);
        }
        map
    }

    /// Successful entries only.
    pub fn ok_entries(&self) -> impl Iterator<Item = &LedgerEntry> {
        self.entries.iter().filter(|e| e.ok())
    }

    /// Config digests of the successful entries — the set of jobs a
    /// `campaign run --resume` skips.
    pub fn completed_digests(&self) -> HashSet<String> {
        self.ok_entries().map(|e| e.config_digest.clone()).collect()
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Append-only ledger file writer. Every line is flushed as soon as it
/// is written, so a killed campaign loses at most the line in flight.
pub struct LedgerWriter {
    out: BufWriter<File>,
}

impl LedgerWriter {
    /// Create (truncate) `path` and write the header line.
    pub fn create(
        path: &Path,
        campaign: &str,
        tolerances: &Tolerances,
        expectations: &[Expectation],
    ) -> io::Result<LedgerWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "{}", header_json(campaign, tolerances, expectations))?;
        out.flush()?;
        Ok(LedgerWriter { out })
    }

    /// Append one entry line and flush.
    pub fn append(&mut self, entry: &LedgerEntry) -> io::Result<()> {
        writeln!(self.out, "{}", entry.to_json())?;
        self.out.flush()
    }

    /// Re-open an existing ledger for appending (for `--resume`). The
    /// header is kept, not rewritten. A torn final line — the in-flight
    /// write of a killed campaign, with or without its newline — is
    /// truncated away first so the resumed entries never concatenate
    /// onto partial bytes.
    pub fn resume(path: &Path) -> io::Result<LedgerWriter> {
        let text = std::fs::read_to_string(path)?;
        // Validate the header and interior lines up front; from_text
        // rejects anything worse than a single torn tail.
        Ledger::from_text(&text)?;
        let mut keep = 0usize;
        for (i, seg) in text.split_inclusive('\n').enumerate() {
            if !seg.ends_with('\n') {
                break; // incomplete final line: drop it
            }
            let line = seg.trim_end();
            let parses = if i == 0 {
                true // header, validated above
            } else {
                line.is_empty()
                    || Json::parse(line)
                        .and_then(|v| LedgerEntry::from_value(&v))
                        .is_ok()
            };
            if !parses {
                break; // complete-but-corrupt final line: drop it too
            }
            keep += seg.len();
        }
        if keep == 0 {
            return Err(invalid("ledger has no intact header line"));
        }
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(keep as u64)?;
        use std::io::Seek;
        file.seek(io::SeekFrom::Start(keep as u64))?;
        Ok(LedgerWriter {
            out: BufWriter::new(file),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(seed: u64, ok: bool) -> LedgerEntry {
        LedgerEntry {
            job: format!("smoke/cca=reno/seed={seed}"),
            axis: vec![("cca".into(), "reno".into())],
            seed,
            config_digest: format!("{:016x}", 0xabcu64 + seed),
            outcome_digest: ok.then(|| format!("{:016x}", 0xdefu64 + seed)),
            error: (!ok).then(|| "run panicked: boom \"quoted\"".to_string()),
            crash_bundle: (!ok).then(|| "/tmp/crashes/crash-1".to_string()),
            attempts: 1,
            quarantined: false,
            sim_secs: 5.0,
            wall_secs: 0.25,
            events_processed: 120_000,
            events_per_sec: 480_000.0,
            eps_by_kind: Vec::new(),
            metrics: ok.then_some(Rollup {
                jfi: Some(0.987654321),
                utilization: 0.93,
                aggregate_mbps: 9.3,
                loss_rate: 0.0123,
                mathis_err: Some(0.08),
                sync_index: None,
                drop_burstiness: Some(0.21),
                share_a: Some(1.0),
                convergence_time: None,
                bottlenecks: Vec::new(),
            }),
            manifest: None,
        }
    }

    fn sample_text(n_ok: usize, n_failed: usize) -> String {
        let mut text = format!(
            "{}\n",
            header_json(
                "smoke",
                &Tolerances::default(),
                &[Expectation {
                    metric: "jfi".into(),
                    min: Some(0.8),
                    max: None,
                    source: "Figure 4".into(),
                }],
            )
        );
        for i in 0..n_ok {
            text.push_str(&sample_entry(i as u64, true).to_json());
            text.push('\n');
        }
        for i in 0..n_failed {
            text.push_str(&sample_entry(100 + i as u64, false).to_json());
            text.push('\n');
        }
        text
    }

    #[test]
    fn entries_round_trip() {
        for ok in [true, false] {
            let e = sample_entry(7, ok);
            let v = Json::parse(&e.to_json()).unwrap();
            let back = LedgerEntry::from_value(&v).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn convergence_time_round_trips_and_stays_out_of_legacy_lines() {
        let plain = sample_entry(7, true);
        assert!(!plain.to_json().contains("convergence_time"));

        let mut e = sample_entry(9, true);
        e.metrics.as_mut().unwrap().convergence_time = Some(2.5);
        let line = e.to_json();
        assert!(line.contains("\"convergence_time\":2.5"));
        let back = LedgerEntry::from_value(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn bottleneck_records_round_trip_and_stay_out_of_legacy_lines() {
        let plain = sample_entry(7, true);
        assert!(!plain.to_json().contains("bottlenecks"));

        let mut e = sample_entry(8, true);
        e.metrics.as_mut().unwrap().bottlenecks = vec![
            BottleneckMetrics {
                link: 0,
                label: "bn0".into(),
                utilization: 0.91,
                jfi: Some(0.88),
                loss_rate: 0.002,
                max_queue_bytes: 60_000,
                ce_marked_pkts: 0,
            },
            BottleneckMetrics {
                link: 2,
                label: "bn2".into(),
                utilization: 0.5,
                jfi: None,
                loss_rate: 0.0,
                max_queue_bytes: 1_200,
                ce_marked_pkts: 31,
            },
        ];
        let json = e.to_json();
        assert!(json.contains("\"bottlenecks\":[{\"link\":0,"));
        let back = LedgerEntry::from_value(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn eps_by_kind_round_trips_and_stays_out_of_legacy_lines() {
        let plain = sample_entry(7, true);
        assert!(!plain.to_json().contains("eps_by_kind"));

        let mut e = sample_entry(8, true);
        e.eps_by_kind = vec![
            ("data".into(), 1_234_567.25),
            ("ack".into(), 654_321.0),
            ("timer".into(), 98_765.5),
        ];
        let json = e.to_json();
        assert!(json.contains("\"eps_by_kind\":{\"data\":1234567.25,"));
        let back = LedgerEntry::from_value(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.to_json(), json);
        // Per-kind throughput is wall-clock-dependent; normalization
        // zeroes the values but keeps the (deterministic) kind keys.
        let n = e.normalized();
        assert_eq!(n.eps_by_kind.len(), 3);
        assert!(n.eps_by_kind.iter().all(|(_, eps)| *eps == 0.0));
    }

    #[test]
    fn ledger_text_round_trips_header_and_entries() {
        let ledger = Ledger::from_text(&sample_text(2, 1)).unwrap();
        assert_eq!(ledger.campaign, "smoke");
        assert_eq!(ledger.entries.len(), 3);
        assert_eq!(ledger.ok_entries().count(), 2);
        assert!(!ledger.truncated);
        assert_eq!(ledger.expectations.len(), 1);
        assert_eq!(ledger.expectations[0].metric, "jfi");
        assert_eq!(ledger.tolerances, Tolerances::default());
        let failed = &ledger.entries[2];
        assert!(failed.error.as_deref().unwrap().contains("boom"));
        assert!(failed.crash_bundle.is_some());
    }

    #[test]
    fn truncated_final_line_is_skipped_not_fatal() {
        let mut text = sample_text(3, 0);
        // Kill the writer mid-line: drop the last 25 bytes.
        text.truncate(text.len() - 25);
        let ledger = Ledger::from_text(&text).unwrap();
        assert!(ledger.truncated);
        assert_eq!(ledger.entries.len(), 2);
    }

    #[test]
    fn interior_corruption_is_fatal() {
        let text = sample_text(3, 0);
        let mut lines: Vec<&str> = text.lines().collect();
        lines[2] = "{\"job\": garbage";
        let err = Ledger::from_text(&lines.join("\n")).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        assert!(Ledger::from_text("{\"ledger\":\"other/9\"}\n").is_err());
        assert!(Ledger::from_text("").is_err());
    }

    #[test]
    fn by_config_indexes_first_entry_per_digest() {
        let ledger = Ledger::from_text(&sample_text(2, 0)).unwrap();
        let idx = ledger.by_config();
        assert_eq!(idx.len(), 2);
        assert!(idx.contains_key(ledger.entries[0].config_digest.as_str()));
    }

    #[test]
    fn normalization_zeroes_wall_clock_fields_only() {
        let e = sample_entry(1, true);
        let n = e.normalized();
        assert_eq!(n.wall_secs, 0.0);
        assert_eq!(n.events_per_sec, 0.0);
        assert_eq!(n.outcome_digest, e.outcome_digest);
        assert_eq!(n.metrics, e.metrics);
        assert_eq!(n.events_processed, e.events_processed);
    }
}
