//! The regression sentinel: compare two ledgers of the same campaign.
//!
//! `campaign diff <baseline> <current>` matches entries by config digest
//! and flags, in decreasing order of severity:
//!
//! 1. **Determinism breaks** — the same configuration produced a
//!    different outcome digest. The simulator is bit-reproducible for a
//!    seed, so any mismatch is a behavior change, never noise.
//! 2. **Status changes** — a run that used to succeed now fails (or vice
//!    versa).
//! 3. **Fidelity drift** — paper metrics (JFI, Mathis median error,
//!    synchronization index) moved beyond the tolerances stored in the
//!    baseline header. Only reachable when the digest *also* changed, but
//!    reported separately because it means the change is large enough to
//!    alter the paper's conclusions, not just flip low bits.
//! 4. **Throughput regressions** — events/sec dropped by more than the
//!    configured fraction (default 10%). Only meaningful when both
//!    ledgers come from comparable hardware; `--skip-eps` disables it.
//! 5. **Coverage changes** — configs present in one ledger only.

use crate::ledger::{Ledger, LedgerEntry};
use std::fmt::Write as _;

/// What kind of regression a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    DeterminismBreak,
    StatusChange,
    FidelityDrift,
    EpsRegression,
    Missing,
    Added,
}

impl FindingKind {
    fn label(self) -> &'static str {
        match self {
            FindingKind::DeterminismBreak => "determinism-break",
            FindingKind::StatusChange => "status-change",
            FindingKind::FidelityDrift => "fidelity-drift",
            FindingKind::EpsRegression => "eps-regression",
            FindingKind::Missing => "missing",
            FindingKind::Added => "added",
        }
    }
}

/// One flagged difference.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: FindingKind,
    /// Job name (from the current ledger where present).
    pub job: String,
    pub detail: String,
}

/// Sentinel configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Maximum tolerated fractional events/sec drop. `None` uses the
    /// baseline header's `events_per_sec_frac`.
    pub eps_tol: Option<f64>,
    /// Whether to check events/sec at all (off for cross-machine diffs).
    pub check_eps: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            eps_tol: None,
            check_eps: true,
        }
    }
}

/// The sentinel's verdict.
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub findings: Vec<Finding>,
    /// Number of configs present in both ledgers.
    pub compared: usize,
}

impl DiffReport {
    /// True when nothing was flagged — the gate `campaign diff` exits 0 on.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Count findings of one kind.
    pub fn count(&self, kind: FindingKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }

    /// Human-readable summary (what `campaign diff` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            let _ = writeln!(
                out,
                "clean: {} configs compared, no findings",
                self.compared
            );
            return out;
        }
        let _ = writeln!(
            out,
            "{} finding(s) across {} compared config(s):",
            self.findings.len(),
            self.compared
        );
        for f in &self.findings {
            let _ = writeln!(out, "  [{}] {}: {}", f.kind.label(), f.job, f.detail);
        }
        out
    }
}

fn drift(
    findings: &mut Vec<Finding>,
    job: &str,
    metric: &str,
    base: Option<f64>,
    cur: Option<f64>,
    tol: f64,
) {
    if let (Some(b), Some(c)) = (base, cur) {
        if (c - b).abs() > tol {
            findings.push(Finding {
                kind: FindingKind::FidelityDrift,
                job: job.to_string(),
                detail: format!("{metric} drifted {b:.4} -> {c:.4} (tolerance ±{tol})"),
            });
        }
    }
}

/// Compare `current` against `baseline`. Tolerances come from the
/// baseline header ([`crate::spec::Tolerances`]), with the events/sec
/// fraction overridable via [`DiffOptions::eps_tol`].
pub fn diff(baseline: &Ledger, current: &Ledger, opts: &DiffOptions) -> DiffReport {
    let tol = &baseline.tolerances;
    let eps_tol = opts.eps_tol.unwrap_or(tol.events_per_sec_frac);
    let base_idx = baseline.by_config();
    let cur_idx = current.by_config();
    let mut findings = Vec::new();
    let mut compared = 0usize;

    for base in &baseline.entries {
        let Some(&cur) = cur_idx.get(base.config_digest.as_str()) else {
            findings.push(Finding {
                kind: FindingKind::Missing,
                job: base.job.clone(),
                detail: format!("config {} present in baseline only", base.config_digest),
            });
            continue;
        };
        compared += 1;
        compare_pair(&mut findings, base, cur, tol, eps_tol, opts.check_eps);
    }
    for cur in &current.entries {
        if !base_idx.contains_key(cur.config_digest.as_str()) {
            findings.push(Finding {
                kind: FindingKind::Added,
                job: cur.job.clone(),
                detail: format!("config {} present in current only", cur.config_digest),
            });
        }
    }
    DiffReport { findings, compared }
}

fn compare_pair(
    findings: &mut Vec<Finding>,
    base: &LedgerEntry,
    cur: &LedgerEntry,
    tol: &crate::spec::Tolerances,
    eps_tol: f64,
    check_eps: bool,
) {
    match (base.ok(), cur.ok()) {
        (true, false) => {
            findings.push(Finding {
                kind: FindingKind::StatusChange,
                job: cur.job.clone(),
                detail: format!(
                    "run now fails: {}",
                    cur.error.as_deref().unwrap_or("unknown error")
                ),
            });
            return;
        }
        (false, true) => {
            findings.push(Finding {
                kind: FindingKind::StatusChange,
                job: cur.job.clone(),
                detail: "run now succeeds (baseline had a failure)".to_string(),
            });
            return;
        }
        (false, false) => return,
        (true, true) => {}
    }

    if base.outcome_digest != cur.outcome_digest {
        findings.push(Finding {
            kind: FindingKind::DeterminismBreak,
            job: cur.job.clone(),
            detail: format!(
                "outcome digest {} -> {}",
                base.outcome_digest.as_deref().unwrap_or("?"),
                cur.outcome_digest.as_deref().unwrap_or("?")
            ),
        });
    }
    if let (Some(bm), Some(cm)) = (&base.metrics, &cur.metrics) {
        drift(findings, &cur.job, "jfi", bm.jfi, cm.jfi, tol.jfi);
        drift(
            findings,
            &cur.job,
            "mathis_err",
            bm.mathis_err,
            cm.mathis_err,
            tol.mathis_err,
        );
        drift(
            findings,
            &cur.job,
            "sync_index",
            bm.sync_index,
            cm.sync_index,
            tol.sync_index,
        );
        // Fires only when both ledgers captured timelines; a baseline
        // recorded without `--timeline` never gates convergence time.
        drift(
            findings,
            &cur.job,
            "convergence_time",
            bm.convergence_time,
            cm.convergence_time,
            tol.convergence_secs,
        );
    }
    if check_eps && base.events_per_sec > 0.0 {
        let frac = (base.events_per_sec - cur.events_per_sec) / base.events_per_sec;
        if frac > eps_tol {
            findings.push(Finding {
                kind: FindingKind::EpsRegression,
                job: cur.job.clone(),
                detail: format!(
                    "events/sec fell {:.1}% ({:.0} -> {:.0}, tolerance {:.0}%)",
                    frac * 100.0,
                    base.events_per_sec,
                    cur.events_per_sec,
                    eps_tol * 100.0
                ),
            });
        }
    }
    // Per-kind gate: a regression confined to one event kind (say, timer
    // dispatch got slow) can hide inside a flat aggregate when that kind
    // is a small share of the stream. Only kinds present in both entries
    // are compared, so unprofiled ledgers on either side are a no-op.
    if check_eps {
        for (kind, base_eps) in &base.eps_by_kind {
            if *base_eps <= 0.0 {
                continue;
            }
            let Some((_, cur_eps)) = cur.eps_by_kind.iter().find(|(k, _)| k == kind) else {
                continue;
            };
            let frac = (base_eps - cur_eps) / base_eps;
            if frac > eps_tol {
                findings.push(Finding {
                    kind: FindingKind::EpsRegression,
                    job: cur.job.clone(),
                    detail: format!(
                        "{kind} events/sec fell {:.1}% ({:.0} -> {:.0}, tolerance {:.0}%)",
                        frac * 100.0,
                        base_eps,
                        cur_eps,
                        eps_tol * 100.0
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Rollup;
    use crate::spec::Tolerances;

    fn entry(seed: u64) -> LedgerEntry {
        LedgerEntry {
            job: format!("c/seed={seed}"),
            axis: Vec::new(),
            seed,
            config_digest: format!("{seed:016x}"),
            outcome_digest: Some(format!("{:016x}", seed * 31)),
            error: None,
            crash_bundle: None,
            attempts: 1,
            quarantined: false,
            sim_secs: 5.0,
            wall_secs: 0.5,
            events_processed: 1_000_000,
            events_per_sec: 2_000_000.0,
            eps_by_kind: Vec::new(),
            metrics: Some(Rollup {
                jfi: Some(0.95),
                utilization: 0.9,
                aggregate_mbps: 9.0,
                loss_rate: 0.01,
                mathis_err: Some(0.10),
                sync_index: Some(0.5),
                drop_burstiness: None,
                share_a: Some(1.0),
                convergence_time: Some(2.0),
                bottlenecks: Vec::new(),
            }),
            manifest: None,
        }
    }

    fn ledger(entries: Vec<LedgerEntry>) -> Ledger {
        let mut l = Ledger::new("c", Tolerances::default());
        l.entries = entries;
        l
    }

    #[test]
    fn identical_ledgers_are_clean() {
        let a = ledger(vec![entry(1), entry(2)]);
        let report = diff(&a, &a.clone(), &DiffOptions::default());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.compared, 2);
        assert!(report.render().contains("clean"));
    }

    #[test]
    fn digest_change_is_a_determinism_break() {
        let base = ledger(vec![entry(1)]);
        let mut cur = ledger(vec![entry(1)]);
        cur.entries[0].outcome_digest = Some("deadbeefdeadbeef".into());
        let report = diff(&base, &cur, &DiffOptions::default());
        assert_eq!(report.count(FindingKind::DeterminismBreak), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn metric_drift_beyond_tolerance_is_flagged() {
        let base = ledger(vec![entry(1)]);
        let mut cur = ledger(vec![entry(1)]);
        let m = cur.entries[0].metrics.as_mut().unwrap();
        m.jfi = Some(0.80); // drift 0.15 > default tolerance 0.05
        let report = diff(&base, &cur, &DiffOptions::default());
        assert_eq!(report.count(FindingKind::FidelityDrift), 1);
        assert!(report.render().contains("jfi"));
        // Within tolerance: clean.
        let mut close = ledger(vec![entry(1)]);
        close.entries[0].metrics.as_mut().unwrap().jfi = Some(0.92);
        assert!(diff(&base, &close, &DiffOptions::default()).is_clean());
    }

    #[test]
    fn convergence_time_drift_gate() {
        let base = ledger(vec![entry(1)]);
        // Drift beyond the 1.0s default tolerance fires.
        let mut cur = ledger(vec![entry(1)]);
        cur.entries[0].metrics.as_mut().unwrap().convergence_time = Some(3.5);
        let report = diff(&base, &cur, &DiffOptions::default());
        assert_eq!(report.count(FindingKind::FidelityDrift), 1);
        assert!(report.render().contains("convergence_time"));
        // Within tolerance: clean.
        let mut close = ledger(vec![entry(1)]);
        close.entries[0].metrics.as_mut().unwrap().convergence_time = Some(2.6);
        assert!(diff(&base, &close, &DiffOptions::default()).is_clean());
        // A baseline without timelines never gates the metric.
        let mut legacy = ledger(vec![entry(1)]);
        legacy.entries[0].metrics.as_mut().unwrap().convergence_time = None;
        assert!(diff(&legacy, &cur, &DiffOptions::default()).is_clean());
    }

    #[test]
    fn eps_regression_gate() {
        let base = ledger(vec![entry(1)]);
        let mut cur = ledger(vec![entry(1)]);
        cur.entries[0].events_per_sec = 1_500_000.0; // 25% drop
        let report = diff(&base, &cur, &DiffOptions::default());
        assert_eq!(report.count(FindingKind::EpsRegression), 1);
        // --skip-eps silences it.
        let skipped = diff(
            &base,
            &cur,
            &DiffOptions {
                eps_tol: None,
                check_eps: false,
            },
        );
        assert!(skipped.is_clean());
        // Speedups are never findings.
        let mut faster = ledger(vec![entry(1)]);
        faster.entries[0].events_per_sec = 9_000_000.0;
        assert!(diff(&base, &faster, &DiffOptions::default()).is_clean());
    }

    #[test]
    fn per_kind_eps_regression_gate() {
        let mut b = entry(1);
        b.eps_by_kind = vec![
            ("data".into(), 1_000_000.0),
            ("ack".into(), 500_000.0),
            ("timer".into(), 100_000.0),
        ];
        let base = ledger(vec![b.clone()]);

        // Aggregate flat, but timer dispatch fell 25%: the per-kind gate
        // catches what the aggregate one cannot.
        let mut doctored = b.clone();
        doctored.eps_by_kind[2].1 = 75_000.0;
        let cur = ledger(vec![doctored]);
        let report = diff(&base, &cur, &DiffOptions::default());
        assert_eq!(report.count(FindingKind::EpsRegression), 1);
        assert!(report.render().contains("timer events/sec fell 25.0%"));

        // Within tolerance (default 10%): clean.
        let mut close = b.clone();
        close.eps_by_kind[2].1 = 95_000.0;
        assert!(diff(&base, &ledger(vec![close]), &DiffOptions::default()).is_clean());

        // A current entry without per-kind data (unprofiled run) is not
        // a finding, and neither is a per-kind speedup.
        let mut bare = b.clone();
        bare.eps_by_kind.clear();
        assert!(diff(&base, &ledger(vec![bare]), &DiffOptions::default()).is_clean());
        let mut faster = b.clone();
        faster.eps_by_kind[0].1 = 9_000_000.0;
        assert!(diff(&base, &ledger(vec![faster]), &DiffOptions::default()).is_clean());

        // --skip-eps silences the per-kind gate too.
        let mut worse = b;
        worse.eps_by_kind[2].1 = 1.0;
        let skipped = diff(
            &base,
            &ledger(vec![worse]),
            &DiffOptions {
                eps_tol: None,
                check_eps: false,
            },
        );
        assert!(skipped.is_clean());
    }

    #[test]
    fn coverage_changes_are_flagged() {
        let base = ledger(vec![entry(1), entry(2)]);
        let cur = ledger(vec![entry(2), entry(3)]);
        let report = diff(&base, &cur, &DiffOptions::default());
        assert_eq!(report.count(FindingKind::Missing), 1);
        assert_eq!(report.count(FindingKind::Added), 1);
        assert_eq!(report.compared, 1);
    }

    #[test]
    fn status_flips_are_flagged() {
        let base = ledger(vec![entry(1)]);
        let mut cur = ledger(vec![entry(1)]);
        cur.entries[0].outcome_digest = None;
        cur.entries[0].error = Some("boom".into());
        let report = diff(&base, &cur, &DiffOptions::default());
        assert_eq!(report.count(FindingKind::StatusChange), 1);
    }
}
