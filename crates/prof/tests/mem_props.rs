//! Property-based tests for the memory-accounting gauges: arbitrary
//! interleavings of alloc/free across logically-concurrent writers never
//! underflow, and the gauge tracks the balanced model exactly.

use ccsim_prof::{MemAccount, MemAccounts};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Arbitrary legal interleavings (frees never exceed the outstanding
    /// balance — the invariant every subsystem pool maintains) keep the
    /// gauge equal to the model and in particular never underflow.
    #[test]
    fn interleaved_alloc_free_matches_model(
        ops in prop::collection::vec((0u64..1_000_000, 0u8..2), 1..256)
    ) {
        let a = MemAccount::new();
        let mut model: u64 = 0;
        for (n, is_alloc) in ops {
            if is_alloc == 1 {
                a.alloc(n);
                model += n;
            } else {
                // Free at most the outstanding balance, as a correct pool
                // does; the amount is still arbitrary within that bound.
                let f = n.min(model);
                a.free(f);
                model -= f;
            }
            prop_assert_eq!(a.bytes(), model);
            prop_assert!(a.bytes() <= u64::MAX / 2, "gauge wrapped");
        }
    }

    /// Interleaving updates across several named accounts keeps each
    /// gauge independent and the registry total equal to the sum.
    #[test]
    fn registry_totals_are_the_sum_of_independent_accounts(
        ops in prop::collection::vec((0usize..4, 0u64..10_000), 1..128)
    ) {
        let reg = MemAccounts::new();
        let names = ["tcp/senders", "net/link_queues", "trace/rings", "sim/wheel"];
        let handles: Vec<Arc<MemAccount>> =
            names.iter().map(|n| reg.account(n)).collect();
        let mut model = [0u64; 4];
        for (i, n) in ops {
            handles[i].alloc(n);
            model[i] += n;
        }
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(reg.account(name).bytes(), model[i]);
        }
        prop_assert_eq!(reg.total_bytes(), model.iter().sum::<u64>());
    }
}
