//! # ccsim-prof — the simulator's self-profiling layer
//!
//! The paper's testbed validated itself with per-module BESS counters
//! (forwarding vs. tcpprobe vs. bookkeeping); this crate is the
//! simulator's equivalent, built for the two scaling projects on the
//! roadmap (parallel DES, one million flows) that need to know *where*
//! the events/s and memory budgets go before they can move them.
//!
//! Three views, one [`Profile`]:
//!
//! * **Event attribution** — exact event counts and strided wall-clock
//!   samples per (component class × event kind), harvested from the
//!   engine's opt-in profiling cells
//!   ([`ccsim_sim::Simulator::enable_profiling`]).
//! * **Scheduler internals** — the timer wheel's always-on counters
//!   ([`ccsim_sim::WheelStats`]): per-level occupancy high-water marks,
//!   cascade counts, batch-size histogram, cancel/rearm rates.
//! * **Memory accounting** — a [`MemAccounts`] registry of per-subsystem
//!   byte gauges (sender state, link queues, trace rings, wheel slabs),
//!   the denominator of the megascale memory-per-flow metric.
//!
//! Everything here is observation: profiling never schedules, drops, or
//! reorders an event, so outcome digests are byte-identical with the
//! profiler on or off (proven by `tests/integration_prof.rs`).
//!
//! Determinism contract: every **count** in a [`Profile`] (cells, samples,
//! wheel counters, memory gauges) is a pure function of the event stream.
//! Only wall-clock nanoseconds vary run to run; [`Profile::normalized`]
//! zeroes them, and same-seed runs produce identical normalized JSON.

pub mod mem;
pub mod profile;

pub use mem::{MemAccount, MemAccounts};
pub use profile::{EventCells, MemGauge, Profile, WheelProfile};

/// Default wall-clock sampling stride: one `Instant` sample per 1024
/// dispatched events keeps the enabled-mode overhead well under the 2%
/// budget while still collecting thousands of samples per second at
/// CoreScale event rates.
pub const DEFAULT_STRIDE: u64 = 1024;
