//! The assembled per-run [`Profile`]: event attribution cells, scheduler
//! internals, and memory gauges, with JSON round-trip, folded-stack
//! flamegraph export, and a human-readable table.
//!
//! The JSON document is a single line of **integers only** (no floats),
//! so it survives every serialization path in the workspace bit-exactly:
//! the manifest's hand-rolled pretty printer, the ledger's JSONL
//! inlining, and a parse → [`ccsim_fault::json::Json::render`] →
//! re-parse round trip. Key names are globally unique across the run
//! manifest (prefixed `prof_` / `wheel_` / `pool`) because the manifest
//! parser extracts fields by first occurrence.

use ccsim_fault::json::Json;
use ccsim_sim::jsonfmt::escape_into;
use ccsim_sim::WheelStats;
use std::fmt::Write as _;

/// Event-attribution cells: exact counts and strided wall samples per
/// (component class × event kind), row-major `class × kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventCells {
    /// Component class names (row labels).
    pub classes: Vec<String>,
    /// Event kind names (column labels).
    pub kinds: Vec<String>,
    /// Sampling stride in events (one `Instant` per `stride` dispatches).
    pub stride: u64,
    /// Exact events dispatched per cell.
    pub counts: Vec<u64>,
    /// Sampled wall nanoseconds charged per cell (non-deterministic).
    pub nanos: Vec<u64>,
    /// Samples charged per cell (deterministic given the event stream).
    pub samples: Vec<u64>,
}

impl EventCells {
    /// The cell index for (class, kind).
    fn cell(&self, class: usize, kind: usize) -> usize {
        class * self.kinds.len() + kind
    }

    /// Exact event count of one cell.
    pub fn count(&self, class: usize, kind: usize) -> u64 {
        self.counts[self.cell(class, kind)]
    }

    /// Total events across all cells.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Event counts per kind, summed over classes, in kind order.
    pub fn per_kind_counts(&self) -> Vec<(String, u64)> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(k, name)| {
                let n = (0..self.classes.len()).map(|c| self.count(c, k)).sum();
                (name.clone(), n)
            })
            .collect()
    }

    /// Sampled nanoseconds per class, summed over kinds, in class order.
    pub fn per_class_nanos(&self) -> Vec<(String, u64)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(c, name)| {
                let n = (0..self.kinds.len())
                    .map(|k| self.nanos[self.cell(c, k)])
                    .sum();
                (name.clone(), n)
            })
            .collect()
    }
}

/// Owned, serializable mirror of the engine's [`WheelStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WheelProfile {
    /// Per-level occupancy high-water marks.
    pub level_high_water: Vec<u64>,
    /// Higher-level slot drains (entries re-routed downward).
    pub cascades: u64,
    /// Live entries moved by those cascades.
    pub cascaded_entries: u64,
    /// log2 histogram of same-timestamp dispatch batch sizes.
    pub batch_hist: Vec<u64>,
    /// Cancellations that hit a live event.
    pub cancels: u64,
    /// Cancel calls on stale tokens.
    pub cancel_misses: u64,
    /// Events scheduled cancellable (rearmable timers).
    pub cancellable_scheduled: u64,
}

impl From<&WheelStats> for WheelProfile {
    fn from(s: &WheelStats) -> WheelProfile {
        WheelProfile {
            level_high_water: s.level_high_water.to_vec(),
            cascades: s.cascades,
            cascaded_entries: s.cascaded_entries,
            batch_hist: s.batch_hist.to_vec(),
            cancels: s.cancels,
            cancel_misses: s.cancel_misses,
            cancellable_scheduled: s.cancellable_scheduled,
        }
    }
}

/// One named memory gauge, as snapshotted from [`crate::MemAccounts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemGauge {
    /// Pool name (`subsystem/pool`).
    pub name: String,
    /// Bytes held.
    pub bytes: u64,
}

/// The complete per-run profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Event attribution cells.
    pub events: EventCells,
    /// Timer-wheel scheduler counters.
    pub wheel: WheelProfile,
    /// Subsystem memory gauges, sorted by name.
    pub memory: Vec<MemGauge>,
    /// Engine dispatch wall time for the whole run, nanoseconds
    /// (non-deterministic; the denominator of per-kind events/s).
    pub dispatch_nanos: u64,
    /// Flow count (the denominator of memory-per-flow).
    pub flows: u32,
}

impl Profile {
    /// Per-kind events per second of engine dispatch time. Empty when no
    /// dispatch time was recorded.
    pub fn per_kind_events_per_sec(&self) -> Vec<(String, f64)> {
        if self.dispatch_nanos == 0 {
            return Vec::new();
        }
        let secs = self.dispatch_nanos as f64 / 1e9;
        self.events
            .per_kind_counts()
            .into_iter()
            .map(|(k, n)| (k, ccsim_sim::jsonfmt::safe_rate(n as f64, secs)))
            .collect()
    }

    /// Total accounted bytes across all memory gauges.
    pub fn memory_total_bytes(&self) -> u64 {
        self.memory.iter().map(|g| g.bytes).sum()
    }

    /// Accounted bytes per flow (`None` with zero flows).
    pub fn memory_per_flow(&self) -> Option<f64> {
        if self.flows == 0 {
            None
        } else {
            Some(self.memory_total_bytes() as f64 / self.flows as f64)
        }
    }

    /// A copy with every wall-clock nanosecond zeroed. Two same-seed runs
    /// produce byte-identical `normalized().to_json()` output — the
    /// profiler-determinism contract tested in `tests/integration_prof.rs`.
    pub fn normalized(&self) -> Profile {
        let mut p = self.clone();
        p.events.nanos.iter_mut().for_each(|n| *n = 0);
        p.dispatch_nanos = 0;
        p
    }

    /// Single-line JSON document (integers only; see module docs).
    pub fn to_json(&self) -> String {
        fn str_arr(out: &mut String, items: &[String]) {
            out.push('[');
            for (i, s) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            out.push(']');
        }
        fn u64_arr(out: &mut String, items: &[u64]) {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        let mut out = String::with_capacity(512);
        out.push_str("{\"prof_classes\":");
        str_arr(&mut out, &self.events.classes);
        out.push_str(",\"prof_kinds\":");
        str_arr(&mut out, &self.events.kinds);
        let _ = write!(out, ",\"prof_stride\":{}", self.events.stride);
        out.push_str(",\"prof_counts\":");
        u64_arr(&mut out, &self.events.counts);
        out.push_str(",\"prof_nanos\":");
        u64_arr(&mut out, &self.events.nanos);
        out.push_str(",\"prof_samples\":");
        u64_arr(&mut out, &self.events.samples);
        out.push_str(",\"wheel_high_water\":");
        u64_arr(&mut out, &self.wheel.level_high_water);
        let _ = write!(
            out,
            ",\"wheel_cascades\":{},\"wheel_cascaded\":{}",
            self.wheel.cascades, self.wheel.cascaded_entries
        );
        out.push_str(",\"wheel_batch_hist\":");
        u64_arr(&mut out, &self.wheel.batch_hist);
        let _ = write!(
            out,
            ",\"wheel_cancels\":{},\"wheel_cancel_misses\":{},\"wheel_cancellable\":{}",
            self.wheel.cancels, self.wheel.cancel_misses, self.wheel.cancellable_scheduled
        );
        out.push_str(",\"mem_accounts\":[");
        for (i, g) in self.memory.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"pool\":\"");
            escape_into(&g.name, &mut out);
            let _ = write!(out, "\",\"pool_bytes\":{}}}", g.bytes);
        }
        let _ = write!(
            out,
            "],\"dispatch_nanos\":{},\"prof_flows\":{}}}",
            self.dispatch_nanos, self.flows
        );
        out
    }

    /// Parse a document produced by [`Profile::to_json`] (or the same
    /// object re-rendered through [`Json::render`]).
    pub fn from_json(text: &str) -> Result<Profile, String> {
        let v = Json::parse(text).map_err(|e| format!("profile: {e:?}"))?;
        Profile::from_value(&v)
    }

    /// Parse from an already-parsed JSON object.
    pub fn from_value(v: &Json) -> Result<Profile, String> {
        fn u64s(v: &Json, key: &str) -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("profile: missing array {key}"))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| format!("profile: {key}: not a u64"))
                })
                .collect()
        }
        fn strs(v: &Json, key: &str) -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("profile: missing array {key}"))?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("profile: {key}: not a string"))
                })
                .collect()
        }
        fn u64f(v: &Json, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("profile: missing field {key}"))
        }
        let memory = v
            .get("mem_accounts")
            .and_then(Json::as_arr)
            .ok_or("profile: missing array mem_accounts")?
            .iter()
            .map(|g| {
                Ok(MemGauge {
                    name: g
                        .get("pool")
                        .and_then(Json::as_str)
                        .ok_or("profile: mem account without pool")?
                        .to_string(),
                    bytes: u64f(g, "pool_bytes")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Profile {
            events: EventCells {
                classes: strs(v, "prof_classes")?,
                kinds: strs(v, "prof_kinds")?,
                stride: u64f(v, "prof_stride")?,
                counts: u64s(v, "prof_counts")?,
                nanos: u64s(v, "prof_nanos")?,
                samples: u64s(v, "prof_samples")?,
            },
            wheel: WheelProfile {
                level_high_water: u64s(v, "wheel_high_water")?,
                cascades: u64f(v, "wheel_cascades")?,
                cascaded_entries: u64f(v, "wheel_cascaded")?,
                batch_hist: u64s(v, "wheel_batch_hist")?,
                cancels: u64f(v, "wheel_cancels")?,
                cancel_misses: u64f(v, "wheel_cancel_misses")?,
                cancellable_scheduled: u64f(v, "wheel_cancellable")?,
            },
            memory,
            dispatch_nanos: u64f(v, "dispatch_nanos")?,
            flows: u64f(v, "prof_flows")? as u32,
        })
    }

    /// Folded-stack export for flamegraph tooling: one
    /// `ccsim;<class>;<kind> <weight>` line per nonzero cell. Weights are
    /// sampled nanoseconds when any were collected, otherwise exact event
    /// counts (so a zero-duration smoke run still renders).
    pub fn to_folded(&self) -> String {
        let use_nanos = self.events.nanos.iter().any(|&n| n > 0);
        let mut out = String::new();
        for (c, class) in self.events.classes.iter().enumerate() {
            for (k, kind) in self.events.kinds.iter().enumerate() {
                let cell = c * self.events.kinds.len() + k;
                let w = if use_nanos {
                    self.events.nanos[cell]
                } else {
                    self.events.counts[cell]
                };
                if w > 0 {
                    let _ = writeln!(out, "ccsim;{class};{kind} {w}");
                }
            }
        }
        out
    }

    /// Human-readable summary: the attribution matrix, the scheduler
    /// counters, and the memory accounts (the `ccsim perf` output).
    pub fn render_table(&self) -> String {
        let mut out = String::with_capacity(1024);
        let total_events = self.events.total().max(1);
        let total_nanos: u64 = self.events.nanos.iter().sum();
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>14} {:>8} {:>12} {:>8}",
            "class", "kind", "events", "ev%", "sampled ms", "time%"
        );
        for (c, class) in self.events.classes.iter().enumerate() {
            for (k, kind) in self.events.kinds.iter().enumerate() {
                let cell = c * self.events.kinds.len() + k;
                let n = self.events.counts[cell];
                if n == 0 {
                    continue;
                }
                let ns = self.events.nanos[cell];
                let _ = writeln!(
                    out,
                    "{:<10} {:>6} {:>14} {:>7.2}% {:>12.2} {:>7.2}%",
                    class,
                    kind,
                    n,
                    100.0 * n as f64 / total_events as f64,
                    ns as f64 / 1e6,
                    100.0 * ns as f64 / total_nanos.max(1) as f64,
                );
            }
        }
        let _ = writeln!(
            out,
            "total events {} in {:.3} s dispatch ({:.0} events/s)",
            self.events.total(),
            self.dispatch_nanos as f64 / 1e9,
            if self.dispatch_nanos > 0 {
                self.events.total() as f64 / (self.dispatch_nanos as f64 / 1e9)
            } else {
                0.0
            }
        );
        for (kind, eps) in self.per_kind_events_per_sec() {
            let _ = writeln!(out, "  {kind}: {eps:.0} events/s");
        }
        let _ = writeln!(
            out,
            "wheel: cascades {} ({} entries), cancels {} (misses {}), cancellable {}",
            self.wheel.cascades,
            self.wheel.cascaded_entries,
            self.wheel.cancels,
            self.wheel.cancel_misses,
            self.wheel.cancellable_scheduled
        );
        let hw: Vec<String> = self
            .wheel
            .level_high_water
            .iter()
            .map(u64::to_string)
            .collect();
        let _ = writeln!(out, "wheel level high-water: [{}]", hw.join(", "));
        let bh: Vec<String> = self.wheel.batch_hist.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "batch-size log2 hist:   [{}]", bh.join(", "));
        if !self.memory.is_empty() {
            let _ = writeln!(out, "memory accounts:");
            for g in &self.memory {
                let _ = writeln!(out, "  {:<20} {:>12} bytes", g.name, g.bytes);
            }
            let _ = write!(
                out,
                "  {:<20} {:>12} bytes",
                "total",
                self.memory_total_bytes()
            );
            match self.memory_per_flow() {
                Some(per) => {
                    let _ = writeln!(out, " ({per:.0} per flow, {} flows)", self.flows);
                }
                None => {
                    let _ = writeln!(out);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Profile {
        Profile {
            events: EventCells {
                classes: vec!["link".into(), "sender".into()],
                kinds: vec!["data".into(), "ack".into(), "timer".into()],
                stride: 1024,
                counts: vec![100, 0, 5, 40, 60, 7],
                nanos: vec![900, 0, 10, 300, 500, 20],
                samples: vec![9, 0, 1, 3, 5, 1],
            },
            wheel: WheelProfile {
                level_high_water: vec![10, 4, 0, 1, 0, 0, 0, 0, 2],
                cascades: 12,
                cascaded_entries: 34,
                batch_hist: vec![50, 20, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
                cancels: 8,
                cancel_misses: 2,
                cancellable_scheduled: 15,
            },
            memory: vec![
                MemGauge {
                    name: "net/link_queues".into(),
                    bytes: 4096,
                },
                MemGauge {
                    name: "tcp/senders".into(),
                    bytes: 8192,
                },
            ],
            dispatch_nanos: 2_000_000,
            flows: 4,
        }
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let p = sample();
        let json = p.to_json();
        let back = Profile::from_json(&json).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_json(), json);
        // And through a parse → render → re-parse cycle (the ledger path).
        let rendered = Json::parse(&json).unwrap().render();
        assert_eq!(Profile::from_json(&rendered).unwrap(), p);
    }

    #[test]
    fn normalized_zeroes_only_wall_time() {
        let p = sample();
        let n = p.normalized();
        assert!(n.events.nanos.iter().all(|&x| x == 0));
        assert_eq!(n.dispatch_nanos, 0);
        assert_eq!(n.events.counts, p.events.counts);
        assert_eq!(n.events.samples, p.events.samples);
        assert_eq!(n.wheel, p.wheel);
        assert_eq!(n.memory, p.memory);
    }

    #[test]
    fn per_kind_rollups() {
        let p = sample();
        let counts = p.events.per_kind_counts();
        assert_eq!(
            counts,
            vec![
                ("data".to_string(), 140),
                ("ack".to_string(), 60),
                ("timer".to_string(), 12)
            ]
        );
        let eps = p.per_kind_events_per_sec();
        // 140 events over 2 ms of dispatch = 70 000 events/s.
        assert!((eps[0].1 - 70_000.0).abs() < 1e-9);
        assert_eq!(p.events.total(), 212);
    }

    #[test]
    fn memory_rollups() {
        let p = sample();
        assert_eq!(p.memory_total_bytes(), 12_288);
        assert!((p.memory_per_flow().unwrap() - 3072.0).abs() < 1e-12);
    }

    #[test]
    fn folded_stacks_weight_by_nanos_with_count_fallback() {
        let p = sample();
        let folded = p.to_folded();
        assert!(folded.contains("ccsim;link;data 900\n"));
        assert!(folded.contains("ccsim;sender;ack 500\n"));
        // Zero-count cell stays out.
        assert!(!folded.contains("ccsim;link;ack"));

        let cold = p.normalized();
        let folded = cold.to_folded();
        assert!(folded.contains("ccsim;link;data 100\n"));
    }

    #[test]
    fn table_renders_all_sections() {
        let t = sample().render_table();
        assert!(t.contains("class"));
        assert!(t.contains("link"));
        assert!(t.contains("wheel: cascades 12"));
        assert!(t.contains("tcp/senders"));
        assert!(t.contains("3072 per flow"));
        assert!(t.contains("106000 events/s") || t.contains("events/s"));
    }
}
