//! Subsystem memory accounting: named byte gauges with saturating
//! alloc/free arithmetic.
//!
//! Two usage styles coexist:
//!
//! * **Pull** — the harness computes a subsystem's footprint at collection
//!   time (e.g. summing `Sender::memory_bytes()` over all flows) and
//!   [`MemAccount::set`]s the gauge. Zero hot-path cost; this is how the
//!   runner populates the per-run [`crate::Profile`].
//! * **Push** — long-lived pools [`MemAccount::alloc`]/[`MemAccount::free`]
//!   as they grow and shrink. Frees saturate at zero (and debug-assert),
//!   so a double-free in a subsystem can never wrap the gauge to 2^64
//!   bytes and poison the memory-per-flow metric.

use crate::profile::MemGauge;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One named byte gauge. Cheap to clone a handle to (`Arc`), safe to
/// update from the campaign executor's worker threads.
#[derive(Debug, Default)]
pub struct MemAccount {
    bytes: AtomicU64,
}

impl MemAccount {
    /// A gauge at zero.
    pub fn new() -> MemAccount {
        MemAccount::default()
    }

    /// Add `n` bytes (saturating at `u64::MAX`).
    pub fn alloc(&self, n: u64) {
        let _ = self
            .bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Release `n` bytes. Saturates at zero; debug builds assert the
    /// account actually held `n` bytes, so unbalanced frees surface in
    /// tests without ever corrupting release-mode metrics.
    pub fn free(&self, n: u64) {
        let prev = self
            .bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            })
            .expect("fetch_update with Some never fails");
        debug_assert!(
            prev >= n,
            "MemAccount underflow: freeing {n} bytes from a {prev}-byte account"
        );
    }

    /// Overwrite the gauge (the pull-style harvest).
    pub fn set(&self, n: u64) {
        self.bytes.store(n, Ordering::Relaxed);
    }

    /// Current bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Registry of named [`MemAccount`]s, one per subsystem pool. Names are
/// `subsystem/pool` by convention (`tcp/senders`, `net/link_queues`,
/// `trace/rings`, `sim/wheel`).
#[derive(Debug, Default)]
pub struct MemAccounts {
    accounts: Mutex<Vec<(String, Arc<MemAccount>)>>,
}

impl MemAccounts {
    /// An empty registry.
    pub fn new() -> MemAccounts {
        MemAccounts::default()
    }

    /// The gauge named `name`, creating it at zero on first use. Repeated
    /// calls with the same name return handles to the same gauge.
    pub fn account(&self, name: &str) -> Arc<MemAccount> {
        let mut accounts = self.accounts.lock().unwrap();
        if let Some((_, a)) = accounts.iter().find(|(n, _)| n == name) {
            return Arc::clone(a);
        }
        let a = Arc::new(MemAccount::new());
        accounts.push((name.to_string(), Arc::clone(&a)));
        a
    }

    /// Snapshot every gauge, sorted by name so exports are stable
    /// regardless of registration order.
    pub fn snapshot(&self) -> Vec<MemGauge> {
        let accounts = self.accounts.lock().unwrap();
        let mut v: Vec<MemGauge> = accounts
            .iter()
            .map(|(name, a)| MemGauge {
                name: name.clone(),
                bytes: a.bytes(),
            })
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Sum over all gauges.
    pub fn total_bytes(&self) -> u64 {
        self.accounts
            .lock()
            .unwrap()
            .iter()
            .map(|(_, a)| a.bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_balance() {
        let a = MemAccount::new();
        a.alloc(100);
        a.alloc(50);
        a.free(30);
        assert_eq!(a.bytes(), 120);
        a.free(120);
        assert_eq!(a.bytes(), 0);
    }

    #[test]
    fn set_overwrites() {
        let a = MemAccount::new();
        a.alloc(10);
        a.set(7);
        assert_eq!(a.bytes(), 7);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "MemAccount underflow")]
    fn underflow_is_debug_asserted() {
        let a = MemAccount::new();
        a.alloc(5);
        a.free(6);
    }

    #[test]
    fn registry_dedupes_by_name_and_snapshots_sorted() {
        let reg = MemAccounts::new();
        let a = reg.account("tcp/senders");
        let b = reg.account("net/link_queues");
        let a2 = reg.account("tcp/senders");
        a.alloc(64);
        a2.alloc(36);
        b.alloc(10);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "net/link_queues");
        assert_eq!(snap[0].bytes, 10);
        assert_eq!(snap[1].name, "tcp/senders");
        assert_eq!(snap[1].bytes, 100);
        assert_eq!(reg.total_bytes(), 110);
    }
}
