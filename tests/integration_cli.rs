//! CLI contract tests: exit codes and stream discipline, by shelling
//! out to the real `ccsim` binary.
//!
//! Conventions under test: usage errors complain on **stderr** and exit
//! 2; `--help` prints on **stdout** and exits 0; runtime failures exit
//! 1; `campaign diff` exits 1 on findings and 0 when clean.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ccsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccsim"))
        .args(args)
        .output()
        .expect("spawn ccsim")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccsim-cli-itest-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn usage_errors_go_to_stderr_with_exit_2() {
    for args in [
        &[][..],
        &["campaign"][..],
        &["campaign", "frobnicate"][..],
        &["campaign", "run"][..],
        &["campaign", "diff", "only-one.jsonl"][..],
        &["campaign", "run", "--workers"][..],
    ] {
        let out = ccsim(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            stderr(&out).contains("usage:"),
            "args {args:?}: no usage on stderr"
        );
        assert!(
            stdout(&out).is_empty(),
            "args {args:?}: usage error leaked to stdout"
        );
    }
}

#[test]
fn help_goes_to_stdout_with_exit_0() {
    for args in [
        &["--help"][..],
        &["run", "--help"][..],
        &["campaign", "--help"][..],
        &["campaign", "run", "--help"][..],
    ] {
        let out = ccsim(args);
        assert_eq!(out.status.code(), Some(0), "args {args:?}");
        assert!(
            stdout(&out).contains("usage:"),
            "args {args:?}: no usage on stdout"
        );
        assert!(
            stderr(&out).is_empty(),
            "args {args:?}: help leaked to stderr"
        );
    }
}

/// End-to-end: run a tiny campaign twice, report it, diff the ledgers
/// clean, then doctor the current ledger and watch the sentinel fire.
#[test]
fn campaign_run_report_diff_round_trip() {
    let dir = temp_dir("campaign");
    let spec_path = dir.join("spec.json");
    std::fs::write(
        &spec_path,
        r#"{
            "name": "cli-itest",
            "base": {
                "preset": "edge", "bw_mbps": 10, "buffer_bytes": 100000,
                "flows": [{"cca": "reno", "count": 2, "rtt_ms": 20}],
                "fidelity": "quick", "warmup_s": 0.5, "duration_s": 2.0,
                "jitter_s": 0.1, "convergence": false
            },
            "axes": [{"param": "cca", "values": ["reno", "cubic"]}],
            "seeds": [1, 2]
        }"#,
    )
    .unwrap();
    let spec = spec_path.to_str().unwrap();
    let base = dir.join("base.jsonl");
    let cur = dir.join("cur.jsonl");

    let out = ccsim(&[
        "campaign",
        "run",
        spec,
        "--workers",
        "2",
        "--ledger",
        base.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let out = ccsim(&[
        "campaign",
        "run",
        spec,
        "--workers",
        "1",
        "--ledger",
        cur.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    // Report renders to a file.
    let report = dir.join("report.md");
    let out = ccsim(&[
        "campaign",
        "report",
        base.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let md = std::fs::read_to_string(&report).unwrap();
    assert!(md.contains("# Campaign report: cli-itest"));
    assert!(md.contains("## Jobs"));

    // Same campaign, different worker counts: the sentinel is clean
    // (skip the wall-clock-sensitive events/sec gate across runs).
    let out = ccsim(&[
        "campaign",
        "diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--skip-eps",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "expected clean diff, got: {}",
        stdout(&out)
    );
    assert!(stdout(&out).contains("clean"));

    // Doctor one outcome digest in the current ledger: exit 1.
    let text = std::fs::read_to_string(&cur).unwrap();
    let doctored = text.replacen("\"outcome_digest\":\"", "\"outcome_digest\":\"f00d", 1);
    assert_ne!(text, doctored);
    std::fs::write(&cur, doctored).unwrap();
    let out = ccsim(&[
        "campaign",
        "diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--skip-eps",
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("determinism-break"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_run_fails_with_exit_1_on_missing_spec() {
    let out = ccsim(&["campaign", "run", "/nonexistent/spec.json", "--quiet"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read spec"));
}

#[test]
fn campaign_diff_fails_with_exit_1_on_missing_ledger() {
    let out = ccsim(&[
        "campaign",
        "diff",
        "/nonexistent/a.jsonl",
        "/nonexistent/b.jsonl",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot load ledger"));
}
