//! Megascale flow-state overhaul: the digest-preservation contract and
//! the batching/slab machinery, end to end.
//!
//! The overhaul touched every hot layer (slab-backed flow state, pooled
//! snapshot buffers, wheel slot trimming, scoreboard deflation, batched
//! ACK/transmit paths), all of which must be byte-inert for every
//! pre-existing configuration. The differential tests here replay the
//! committed baseline ledgers' shapes (ci-smoke, topo-smoke,
//! perf-corescale) and compare digests, and run the slab attached vs
//! detached over a high-flow-count scenario.

use ccsim::campaign::{CampaignSpec, Ledger};
use ccsim::cca::CcaKind;
use ccsim::experiments::observe::scenario_digest;
use ccsim::experiments::{run, BuiltNetwork, FlowGroup, Scenario, Tuning};
use ccsim::sim::{Bandwidth, SimDuration, SimTime};
use ccsim::tcp::sender::Sender;
use std::path::Path;

/// Replay a committed spec/ledger pair: every job's config digest must
/// match the baseline entry, and (for up to `rerun` jobs) so must the
/// outcome digest of a fresh run through today's tree.
fn replay_baseline(name: &str, rerun: usize) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let spec_text =
        std::fs::read_to_string(root.join(format!("examples/campaigns/{name}.json"))).unwrap();
    let spec = CampaignSpec::from_json(&spec_text).unwrap();
    let ledger = Ledger::load(&root.join(format!("baselines/{name}.ledger.jsonl"))).unwrap();
    let baseline = ledger.by_config();

    let jobs = spec.jobs().unwrap();
    assert_eq!(
        jobs.len(),
        ledger.entries.len(),
        "{name}: job count drifted"
    );
    for (i, job) in jobs.iter().enumerate() {
        let config = format!("{:016x}", scenario_digest(&job.scenario));
        let entry = baseline.get(config.as_str()).unwrap_or_else(|| {
            panic!(
                "{name}/{}: config digest {config} not in the baseline",
                job.name
            )
        });
        assert_eq!(entry.job, job.name);
        if i < rerun {
            let outcome = run(&job.scenario);
            assert_eq!(
                format!("{:016x}", outcome.digest()),
                entry.outcome_digest.clone().unwrap(),
                "{name}/{}: outcome digest diverged from the committed baseline",
                job.name
            );
        }
    }
}

/// In release every baseline job is re-run; debug builds replay one job
/// per campaign (the full sweep is minutes of debug-mode simulation) and
/// still config-digest-check the rest.
fn rerun_budget(jobs: usize) -> usize {
    if cfg!(debug_assertions) {
        1
    } else {
        jobs
    }
}

#[test]
fn ci_smoke_baseline_digests_are_preserved() {
    replay_baseline("ci-smoke", rerun_budget(4));
}

#[test]
fn topo_smoke_baseline_digests_are_preserved() {
    replay_baseline("topo-smoke", rerun_budget(8));
}

#[test]
fn perf_corescale_baseline_digests_are_preserved() {
    // The CoreScale job is heavyweight even in release; config digests
    // are always checked, the outcome replay runs in release only.
    replay_baseline(
        "perf-corescale",
        rerun_budget(0).max(usize::from(!cfg!(debug_assertions))),
    );
}

/// A high-flow-count scenario kept cheap enough for debug CI: 10k flows
/// share 500 Mbps for a sub-second horizon, deep enough into the run
/// that every flow has started and the slab columns are hot.
fn dense_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::mega_scale()
        .named("slab-dense")
        .flows(vec![
            FlowGroup::new(CcaKind::Reno, 5_000, SimDuration::from_millis(20)),
            FlowGroup::new(CcaKind::Cubic, 5_000, SimDuration::from_millis(40)),
        ])
        .tuned(Tuning::default())
        .seed(seed);
    s.bottleneck = Bandwidth::from_mbps(500);
    s.buffer_bytes = 12_500_000;
    s.start_jitter = SimDuration::from_millis(300);
    s.warmup = SimDuration::from_millis(400);
    s.duration = SimDuration::from_millis(300);
    s.snapshot_interval = SimDuration::from_millis(100);
    s
}

#[test]
fn slab_attachment_is_event_inert_at_10k_flows() {
    // Same scenario, slab attached (the runner's configuration) vs
    // detached: the slab is derived state, so the event sequence, the
    // delivered column, and every sender's hot fields must be identical.
    let s = dense_scenario(5);
    let horizon = SimTime::ZERO + s.warmup + s.duration;

    let mut with = BuiltNetwork::try_build(&s).unwrap();
    let mut without = BuiltNetwork::try_build_detached(&s).unwrap();
    assert!(with.slab.is_some());
    assert!(without.slab.is_none());
    with.sim.try_run_until(horizon).unwrap();
    without.sim.try_run_until(horizon).unwrap();

    assert_eq!(with.sim.events_processed(), without.sim.events_processed());
    assert_eq!(with.per_flow_delivered(), without.per_flow_delivered());
    assert!(with.per_flow_delivered().iter().sum::<u64>() > 0);

    // The slab columns hold exactly what a component walk reads.
    let slab = with.slab.as_ref().unwrap().borrow();
    assert_eq!(slab.len(), with.flow_count());
    for (i, (&a, &b)) in with.senders.iter().zip(&without.senders).enumerate() {
        let sa = with.sim.component::<Sender>(a);
        let sb = without.sim.component::<Sender>(b);
        let (cwnd, inflight, srtt_nanos, retransmits) = slab.sender_row(i);
        assert_eq!(cwnd, sa.cca().cwnd(), "flow {i} cwnd");
        assert_eq!(cwnd, sb.cca().cwnd(), "flow {i} cwnd detached");
        assert_eq!(inflight, sa.in_flight(), "flow {i} inflight");
        assert_eq!(srtt_nanos, sa.srtt().as_nanos(), "flow {i} srtt");
        assert_eq!(retransmits, sa.stats().retransmits, "flow {i} retransmits");
        assert_eq!(sb.stats().retransmits, retransmits);
    }
}

#[test]
fn dense_runs_are_digest_deterministic() {
    let a = run(&dense_scenario(9));
    let b = run(&dense_scenario(9));
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn batching_coalesces_events_without_distorting_the_physics() {
    // The megascale knobs (delayed-ACK stride, link transmit batching)
    // legitimately change event counts — that is their purpose — so they
    // are scenario-gated. Against the same shape with legacy tuning, the
    // batched run must process strictly fewer events while delivering
    // the same aggregate within a few percent.
    let legacy = dense_scenario(3);
    let batched = dense_scenario(3).tuned(Tuning {
        delack_segments: 4,
        tx_burst: 8,
    });
    let a = run(&legacy);
    let b = run(&batched);
    assert!(
        b.events_processed < a.events_processed,
        "batched {} !< legacy {}",
        b.events_processed,
        a.events_processed
    );
    let (ta, tb) = (a.aggregate_throughput_mbps(), b.aggregate_throughput_mbps());
    assert!(
        (ta - tb).abs() / ta < 0.05,
        "batched throughput drifted: {ta} vs {tb} Mbps"
    );
}
