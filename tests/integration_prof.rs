//! Profiler integration: digest-inertness of `ccsim-prof` across whole
//! campaigns, profile rollups in the ledger, and manifest round-trips
//! for runs with routed multi-bottleneck topologies.

use ccsim::campaign::{run_campaign, CampaignSpec, ExecutorOptions, LedgerEntry};
use ccsim::cca::CcaKind;
use ccsim::experiments::{try_run_observed_with, FlowGroup, ObserveOptions, Scenario};
use ccsim::sim::SimDuration;
use ccsim::telemetry::RunManifest;
use ccsim::topo::TopologyKind;

/// Load one of the checked-in example campaign specs, with the
/// simulated window shortened so the differential runs in test time.
/// The axes (CCA grid, AQM × ECN grid), topology, and seeds — the parts
/// that exercise distinct event mixes — are untouched.
fn example_spec(name: &str) -> CampaignSpec {
    let path = format!(
        "{}/examples/campaigns/{name}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let mut spec = CampaignSpec::from_json(&text).unwrap();
    spec.base.warmup = SimDuration::from_secs(1);
    spec.base.duration = SimDuration::from_secs(4);
    spec.base.start_jitter = SimDuration::from_millis(200);
    spec
}

fn run_entries(spec: &CampaignSpec, profile: bool) -> Vec<LedgerEntry> {
    let jobs = spec.jobs().unwrap();
    let opts = ExecutorOptions {
        workers: 4,
        profile,
        ..ExecutorOptions::default()
    };
    run_campaign(jobs, &opts, |_| {})
        .iter()
        .map(LedgerEntry::from_result)
        .collect()
}

/// The tentpole differential: attaching the profiler to every job of the
/// `ci-smoke` and `topo-smoke` campaigns changes no outcome digest, while
/// the profiled ledger entries gain the per-kind events/s rollup and an
/// embedded `Profile` section.
#[test]
fn profiling_is_digest_inert_across_smoke_campaigns() {
    for name in ["ci-smoke", "topo-smoke"] {
        let spec = example_spec(name);
        let plain = run_entries(&spec, false);
        let profiled = run_entries(&spec, true);
        assert_eq!(plain.len(), profiled.len(), "{name}: job count");
        for (p, q) in plain.iter().zip(&profiled) {
            assert!(p.ok(), "{name}/{}: {:?}", p.job, p.error);
            assert!(q.ok(), "{name}/{}: {:?}", q.job, q.error);
            assert_eq!(p.outcome_digest, q.outcome_digest, "{name}/{}", p.job);
            assert_eq!(p.events_processed, q.events_processed, "{name}/{}", p.job);
            // Per-kind events/s comes from the engine's classified
            // counters, so both entries carry it; only the profiled one
            // embeds the full Profile section.
            assert!(!p.eps_by_kind.is_empty(), "{name}/{}", p.job);
            assert!(!q.eps_by_kind.is_empty(), "{name}/{}", q.job);
            assert!(
                p.manifest.as_ref().is_none_or(|m| m.profile.is_none()),
                "{name}/{}: unprofiled run must not embed a profile",
                p.job
            );
            let profile = q
                .manifest
                .as_ref()
                .and_then(|m| m.profile.as_ref())
                .unwrap_or_else(|| panic!("{name}/{}: no profile in manifest", q.job));
            // ...and its event attribution covers every dispatched event.
            assert_eq!(
                profile.events.total(),
                q.events_processed,
                "{name}/{}",
                q.job
            );
        }
    }
}

/// Satellite 3: a profiled parking-lot run yields a manifest with
/// non-empty per-bottleneck metrics that survives a full JSON round-trip
/// byte-for-byte.
#[test]
fn profiled_parking_lot_manifest_round_trips_with_bottlenecks() {
    let mut scenario = Scenario::edge_scale()
        .named("prof-parking-lot")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            4,
            SimDuration::from_millis(20),
        )])
        .seed(7);
    scenario.topology = TopologyKind::parse("parking_lot:3").unwrap();
    scenario.warmup = SimDuration::from_secs(1);
    scenario.duration = SimDuration::from_secs(4);
    scenario.start_jitter = SimDuration::from_millis(200);
    scenario.convergence = None;

    let obs = try_run_observed_with(&scenario, ObserveOptions::profiled(), |_| {}).unwrap();
    let manifest = &obs.manifest;
    assert!(
        !manifest.bottlenecks.is_empty(),
        "parking_lot:3 must surface per-bottleneck metrics"
    );
    assert_eq!(manifest.bottlenecks.len(), obs.outcome.bottlenecks.len());
    for (m, o) in manifest.bottlenecks.iter().zip(&obs.outcome.bottlenecks) {
        assert_eq!(m.link, o.link);
        assert_eq!(m.label, o.label);
        assert!(m.utilization > 0.0, "bottleneck {} unused", m.label);
    }
    assert!(manifest.profile.is_some());

    let json = manifest.to_json();
    let reparsed = RunManifest::from_json(&json).unwrap();
    assert_eq!(reparsed.to_json(), json, "manifest JSON round-trip");
    assert_eq!(reparsed.bottlenecks.len(), manifest.bottlenecks.len());
}
