//! Whole-system tests of the topology subsystem: multi-bottleneck
//! shapes, AQM disciplines, and ECN, exercised through the public
//! scenario API exactly as the CLI and campaign layers drive it.
//!
//! The most important test here is the differential one: a
//! single-bottleneck drop-tail scenario now runs through the
//! `ccsim-topo` instantiation path and the `AqmQueue` seam, and must
//! produce byte-identical digests, Debug output, and JSON to what the
//! dedicated single-link wiring produced before the subsystem existed.

use ccsim::cca::CcaKind;
use ccsim::experiments::observe::scenario_digest;
use ccsim::experiments::{run, FlowGroup, Scenario};
use ccsim::net::AqmKind;
use ccsim::sim::{Bandwidth, SimDuration};
use ccsim::topo::TopologyKind;
use ccsim::trace::TraceConfig;

fn base(seed: u64) -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("topo")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            6,
            SimDuration::from_millis(20),
        )])
        .seed(seed);
    s.bottleneck = Bandwidth::from_mbps(25);
    s.buffer_bytes = 625_000;
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(6);
    s.start_jitter = SimDuration::from_millis(500);
    s.convergence = None;
    s
}

#[test]
fn single_bottleneck_droptail_is_byte_identical_to_the_legacy_wiring() {
    // The defaulted scenario and one with every topology knob set to its
    // explicit default must be indistinguishable end to end: same config
    // digest, same outcome digest, same rendered forms. This is the
    // pay-only-for-divergence contract that keeps every pre-topology
    // baseline ledger valid.
    let implicit = base(11);
    let explicit = base(11)
        .topology(TopologyKind::SingleBottleneck)
        .aqm(AqmKind::DropTail)
        .ecn(false);
    assert_eq!(scenario_digest(&implicit), scenario_digest(&explicit));
    assert_eq!(format!("{implicit:?}"), format!("{explicit:?}"));

    let a = run(&implicit);
    let b = run(&explicit);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.to_json(), b.to_json());

    // No topology artifacts leak into the legacy surfaces.
    let debug = format!("{implicit:?}");
    for key in ["topology", "aqm", "ecn"] {
        assert!(!debug.contains(key), "{key} leaked into Debug: {debug}");
    }
    assert!(!a.to_json().contains("bottlenecks"));
    assert!(a.bottlenecks.is_empty());
}

#[test]
fn dumbbell_outcomes_are_digest_deterministic_across_seeds() {
    for seed in [1, 7, 42] {
        let s = base(seed).topology(TopologyKind::Dumbbell);
        let a = run(&s);
        let b = run(&s);
        assert_eq!(a.digest(), b.digest(), "seed {seed}");
        assert_eq!(a.to_json(), b.to_json(), "seed {seed}");
        // The access link is 4x the bottleneck, so the dumbbell still
        // saturates the true bottleneck.
        let bn = a
            .bottlenecks
            .iter()
            .find(|b| b.label == "bottleneck")
            .expect("dumbbell reports its bottleneck link");
        assert!(bn.utilization > 0.8, "seed {seed}: {}", bn.utilization);
    }
    // Different seeds still perturb the microstate.
    let a = run(&base(1).topology(TopologyKind::Dumbbell));
    let b = run(&base(2).topology(TopologyKind::Dumbbell));
    assert_ne!(a.digest(), b.digest());
}

#[test]
fn parking_lot_reports_per_bottleneck_utilization_and_jfi() {
    let s = base(5).topology(TopologyKind::ParkingLot(3));
    let o = run(&s);
    assert_eq!(o.bottlenecks.len(), 3, "one record per bottleneck link");
    for (i, b) in o.bottlenecks.iter().enumerate() {
        assert_eq!(b.link, i as u32);
        assert_eq!(b.label, format!("bn{i}"));
        assert!(
            b.utilization > 0.5 && b.utilization < 1.05,
            "link {i} utilization {}",
            b.utilization
        );
        // Flow 0 crosses every hop, the short flows one each: every
        // bottleneck carries at least two flows, so a subset JFI exists.
        let jfi = b.jfi.expect("per-bottleneck JFI present");
        assert!(jfi > 0.3 && jfi <= 1.0, "link {i} JFI {jfi}");
    }
    // The per-bottleneck records round-trip through the outcome JSON.
    assert!(o.to_json().contains("\"bottlenecks\":[{\"link\":0,"));
}

#[test]
fn red_desynchronizes_drops_relative_to_droptail() {
    // The classic AQM result the subsystem exists to reproduce (paper
    // §5: drop-tail tail-drop synchronizes loss events across flows;
    // RED's randomized early drops break the synchronization). Any one
    // seed is noisy, so compare the trace-derived loss-synchronization
    // index averaged over seeds — the runs are deterministic, so the
    // comparison is too.
    let traced = |aqm: AqmKind, seed: u64| {
        let mut s = Scenario::edge_scale()
            .named("topo-sync")
            .flows(vec![FlowGroup::new(
                CcaKind::Reno,
                4,
                SimDuration::from_millis(40),
            )])
            .seed(seed)
            .aqm(aqm)
            .traced(TraceConfig::standard());
        s.bottleneck = Bandwidth::from_mbps(25);
        s.buffer_bytes = 250_000; // 2x BDP: tail drops hit a full queue
        s.warmup = SimDuration::from_secs(2);
        s.duration = SimDuration::from_secs(20);
        s.start_jitter = SimDuration::from_secs(1);
        s.convergence = None;
        s
    };
    let bin = SimDuration::from_millis(10);
    let mean_sync = |aqm: AqmKind| {
        let seeds = [1u64, 2, 3, 4, 5];
        let total: f64 = seeds
            .iter()
            .map(|&seed| {
                run(&traced(aqm, seed))
                    .trace_synchronization_index(bin)
                    .expect("run has congestion events")
            })
            .sum();
        total / seeds.len() as f64
    };
    let sync_droptail = mean_sync(AqmKind::DropTail);
    let sync_red = mean_sync(AqmKind::Red);
    assert!(
        sync_red < sync_droptail,
        "RED should desynchronize: red {sync_red} vs droptail {sync_droptail}"
    );
}

#[test]
fn ecn_marks_replace_drops_under_codel() {
    let s = base(9).aqm(AqmKind::Codel).ecn(true);
    let o = run(&s);
    let marks: u64 = o.bottlenecks.iter().map(|b| b.ce_marked_pkts).sum();
    assert!(marks > 0, "CoDel with ECN should CE-mark");
    let losses: f64 = o.bottlenecks.iter().map(|b| b.loss_rate).sum();
    assert!(
        losses < 0.001,
        "marking should displace drops, loss {losses}"
    );
    // ECN-capable senders still converge to a fair, saturated link.
    assert!(o.utilization() > 0.8, "utilization {}", o.utilization());
    assert!(o.jain_index().unwrap() > 0.8);
}
