//! Checkpoint container properties: canonical encode/decode fixpoint,
//! and typed — never panicking — failure on malformed bytes. The
//! container is exactly the thing a kill-mid-write tears, so every
//! corruption class must come back as a `ResumeError` value.

use ccsim::resume::{Checkpoint, ResumeError};
use proptest::prelude::*;

/// A deterministic pseudo-random checkpoint (xorshift body bytes).
fn synthetic(seed: u64, nanos: u64, len: usize) -> Checkpoint {
    let mut x = seed | 1;
    let mut body = Vec::with_capacity(len);
    for _ in 0..len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        body.push(x as u8);
    }
    Checkpoint {
        scenario_json: format!("{{\"name\":\"prop/{seed}\"}}"),
        taken_at_nanos: nanos,
        body,
    }
}

proptest! {
    /// encode → decode → encode is a fixpoint: decode returns exactly
    /// what was encoded, and re-encoding is byte-identical (canonical
    /// encoding — no hidden nondeterminism in the container).
    #[test]
    fn encode_decode_encode_fixpoint(
        seed in 0u64..u64::MAX,
        nanos in 0u64..u64::MAX,
        len in 0usize..2048,
    ) {
        let cp = synthetic(seed, nanos, len);
        let bytes = cp.encode();
        let decoded = Checkpoint::decode(&bytes).expect("valid container decodes");
        prop_assert_eq!(&decoded, &cp);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Every truncation of a valid container is a typed error.
    #[test]
    fn truncated_containers_are_typed_errors(
        seed in 0u64..u64::MAX,
        len in 0usize..512,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = synthetic(seed, 7, len).encode();
        let cut = ((bytes.len() as f64 - 1.0) * cut_frac) as usize;
        let err = Checkpoint::decode(&bytes[..cut]).expect_err("truncated container");
        prop_assert!(
            matches!(
                err,
                ResumeError::Truncated { .. }
                    | ResumeError::BadMagic
                    | ResumeError::DigestMismatch { .. }
            ),
            "unexpected error class: {err}"
        );
    }

    /// Flipping any single byte of a valid container is caught — as a
    /// magic, version, or digest failure — never accepted, never a panic.
    #[test]
    fn corrupted_containers_are_typed_errors(
        seed in 0u64..u64::MAX,
        len in 0usize..512,
        pos_frac in 0.0f64..1.0,
    ) {
        let mut bytes = synthetic(seed, 7, len).encode();
        let pos = ((bytes.len() as f64 - 1.0) * pos_frac) as usize;
        bytes[pos] ^= 0xFF;
        prop_assert!(Checkpoint::decode(&bytes).is_err());
    }
}

#[test]
fn version_mismatch_is_a_typed_error() {
    // The version field is the 4 LE bytes right after the 8-byte magic.
    let mut bytes = synthetic(3, 11, 64).encode();
    bytes[8] ^= 0x40;
    match Checkpoint::decode(&bytes) {
        Err(ResumeError::Version { found, expected }) => {
            assert_ne!(found, expected);
        }
        other => panic!("want ResumeError::Version, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_a_typed_error() {
    let mut bytes = synthetic(3, 11, 64).encode();
    bytes[0] ^= 0xFF;
    assert_eq!(Checkpoint::decode(&bytes), Err(ResumeError::BadMagic));
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let err = Checkpoint::read_file(std::path::Path::new("/nonexistent/missing.ckpt"))
        .expect_err("missing file");
    assert!(matches!(err, ResumeError::Io(_)), "{err}");
}
