//! Checkpoint/restore and campaign-resume guarantees, end to end:
//!
//! * `run(0→T)` and `run(0→T/2) → snapshot → encode → decode → run(→T)`
//!   produce byte-identical outcomes — across CCAs, on a routed
//!   parking-lot topology, and under an active fault plan with AQM+ECN
//!   (the checkpoint must carry the fault-injector cursors and AQM
//!   state, not just the flows).
//! * A campaign killed mid-run (torn final ledger line) resumes without
//!   re-running completed jobs, and the union ledger is equivalent to
//!   the uninterrupted one modulo wall-clock fields.

use ccsim::campaign::{
    run_campaign_supervised, CampaignJob, ExecutorOptions, Ledger, LedgerEntry, LedgerWriter,
    SupervisorOptions, Tolerances,
};
use ccsim::cca::CcaKind;
use ccsim::experiments::observe::scenario_digest;
use ccsim::experiments::{
    run_to_checkpoint, try_resume_run, try_run, Checkpoint, FlowGroup, Scenario,
};
use ccsim::fault::FaultPlan;
use ccsim::net::AqmKind;
use ccsim::sim::{Bandwidth, SimDuration, SimTime};
use ccsim::topo::TopologyKind;
use std::path::PathBuf;
use std::sync::Mutex;

fn base(cca: CcaKind, seed: u64) -> Scenario {
    let mut s = Scenario::edge_scale()
        .named(format!("resume/{}/seed={seed}", cca.name()))
        .flows(vec![FlowGroup::new(cca, 4, SimDuration::from_millis(20))])
        .seed(seed);
    s.bottleneck = Bandwidth::from_mbps(20);
    s.buffer_bytes = 150_000;
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(6);
    s.start_jitter = SimDuration::from_millis(200);
    s.convergence = None;
    s
}

/// The differential: full run vs checkpoint-at-midpoint, round-tripped
/// through the serialized container, then resumed to the horizon.
fn assert_resume_identical(s: &Scenario) {
    let full = try_run(s).expect("full run");
    let cp = run_to_checkpoint(s, SimTime::from_secs(4)).expect("checkpoint");
    let decoded = Checkpoint::decode(&cp.encode()).expect("container round-trip");
    assert_eq!(
        decoded, cp,
        "{}: container round-trip changed state",
        s.name
    );
    let resumed = try_resume_run(&decoded).expect("resumed run");
    assert_eq!(
        full.digest(),
        resumed.digest(),
        "{}: resumed outcome digest diverged",
        s.name
    );
    assert_eq!(
        full.to_json(),
        resumed.to_json(),
        "{}: resumed outcome JSON diverged",
        s.name
    );
    assert_eq!(
        full.events_processed, resumed.events_processed,
        "{}",
        s.name
    );
}

#[test]
fn resume_is_byte_identical_across_ccas() {
    for cca in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr] {
        assert_resume_identical(&base(cca, 11));
    }
}

#[test]
fn resume_is_byte_identical_on_a_parking_lot_topology() {
    let mut s = base(CcaKind::Cubic, 5);
    s.topology = TopologyKind::parse("parking_lot:3").expect("parking_lot:3 parses");
    assert_resume_identical(&s);
}

#[test]
fn resume_is_byte_identical_under_faults_aqm_and_ecn() {
    let mut s = base(CcaKind::Reno, 9);
    s.aqm = AqmKind::parse("red").expect("red parses");
    s.ecn = true;
    // One fault before the checkpoint (cursor state must carry over) and
    // one after it (the resumed run must still fire it).
    let plan = FaultPlan::none()
        .blackout(SimTime::from_secs_f64(3.0), SimDuration::from_millis(200))
        .iid_loss(SimTime::from_secs_f64(5.0), 0.01);
    s = s.faulted(plan);
    assert_resume_identical(&s);
}

fn campaign_jobs() -> Vec<CampaignJob> {
    let mut jobs = Vec::new();
    for cca in [CcaKind::Reno, CcaKind::Cubic] {
        for seed in [1u64, 2] {
            let mut s = base(cca, seed);
            s.warmup = SimDuration::from_secs(1);
            s.duration = SimDuration::from_secs(3);
            s = s.named(format!("resume-it/cca={}/seed={seed}", cca.name()));
            jobs.push(CampaignJob {
                name: s.name.clone(),
                axis: vec![("cca".into(), cca.name().into())],
                seed,
                scenario: s,
            });
        }
    }
    jobs
}

fn run_to_ledger(jobs: Vec<CampaignJob>, writer: LedgerWriter) {
    let opts = ExecutorOptions {
        workers: 1,
        crash_dir: None,
        profile: false,
        ..ExecutorOptions::default()
    };
    let sink = Mutex::new(writer);
    run_campaign_supervised(jobs, &opts, &SupervisorOptions::default(), |r| {
        sink.lock()
            .unwrap()
            .append(&LedgerEntry::from_result(r))
            .expect("ledger append");
    });
}

#[test]
fn killed_campaign_resumes_to_an_equivalent_union_ledger() {
    let dir = std::env::temp_dir().join(format!("ccsim-resume-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let full_path: PathBuf = dir.join("full.jsonl");
    let part_path: PathBuf = dir.join("partial.jsonl");
    let jobs = campaign_jobs();

    // The uninterrupted campaign.
    run_to_ledger(
        jobs.clone(),
        LedgerWriter::create(&full_path, "resume-it", &Tolerances::default(), &[]).unwrap(),
    );
    let full = Ledger::load(&full_path).unwrap();
    assert_eq!(full.entries.len(), 4);

    // Simulate a kill mid-write: header + two complete entries + the
    // torn front half of the third.
    let text = std::fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let torn = format!(
        "{}\n{}\n{}\n{}",
        lines[0],
        lines[1],
        lines[2],
        &lines[3][..lines[3].len() / 2]
    );
    std::fs::write(&part_path, torn).unwrap();

    // Resume: the loader flags the tear, completed digests are skipped,
    // and the remaining jobs append to the same file.
    let prior = Ledger::load(&part_path).unwrap();
    assert!(prior.truncated, "torn final line must be detected");
    let done = prior.completed_digests();
    assert_eq!(done.len(), 2);
    let remaining: Vec<CampaignJob> = jobs
        .into_iter()
        .filter(|j| !done.contains(&format!("{:016x}", scenario_digest(&j.scenario))))
        .collect();
    assert_eq!(remaining.len(), 2, "exactly the unfinished jobs remain");
    run_to_ledger(remaining, LedgerWriter::resume(&part_path).unwrap());

    // The union ledger equals the uninterrupted one modulo wall clock.
    let resumed = Ledger::load(&part_path).unwrap();
    assert!(!resumed.truncated, "resume truncates the torn line away");
    let norm = |l: &Ledger| -> Vec<String> {
        let mut v: Vec<String> = l.entries.iter().map(|e| e.normalized().to_json()).collect();
        v.sort();
        v
    };
    assert_eq!(norm(&full), norm(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}
