//! Timeline-layer integration: digest-inertness of the windowed sampler
//! across the committed baseline campaigns, the live HTTP endpoint, and
//! the convergence-time plumbing into ledger entries.

use ccsim::campaign::{run_campaign, CampaignSpec, ExecutorOptions, LedgerEntry};
use ccsim::experiments::{serve, LiveState, ObserveOptions, TimelineConfig};
use ccsim::fault::json::Json;
use ccsim::sim::SimDuration;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Parse one of the committed baseline campaign specs.
fn baseline_spec(name: &str) -> CampaignSpec {
    let path = format!(
        "{}/examples/campaigns/{name}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    CampaignSpec::from_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn run_first_job(spec: &CampaignSpec, timeline: Option<TimelineConfig>) -> LedgerEntry {
    let mut jobs = spec.jobs().expect("spec expands");
    jobs.truncate(1);
    let opts = ExecutorOptions {
        workers: 1,
        timeline,
        ..ExecutorOptions::default()
    };
    let results = run_campaign(jobs, &opts, |_| {});
    LedgerEntry::from_result(&results[0])
}

/// The sampler must never perturb the simulation: for each baseline
/// campaign shape, the first job's outcome digest is byte-identical with
/// the timeline on and off, while the timelined entry gains the manifest
/// section. The CI `timeline` job repeats this at full campaign scale in
/// release mode; here each shape is thinned (shorter horizon, CoreScale
/// also in flow count and rate) to keep single-core debug runtime sane.
#[test]
fn timeline_is_digest_inert_across_baseline_campaign_shapes() {
    use ccsim::sim::Bandwidth;
    for name in ["ci-smoke", "topo-smoke", "perf-corescale"] {
        let mut spec = baseline_spec(name);
        spec.base.warmup = SimDuration::from_secs(1);
        spec.base.duration = SimDuration::from_secs(5);
        spec.base.start_jitter = SimDuration::from_millis(200);
        if name == "perf-corescale" {
            spec.base.bottleneck = Bandwidth::from_mbps(400);
            spec.base.duration = SimDuration::from_secs(3);
            for g in &mut spec.base.flows {
                g.count = g.count.min(100);
            }
        }
        let plain = run_first_job(&spec, None);
        let timed = run_first_job(&spec, Some(TimelineConfig::default()));
        assert!(plain.ok(), "{name}: {:?}", plain.error);
        assert!(timed.ok(), "{name}: {:?}", timed.error);
        assert_eq!(plain.outcome_digest, timed.outcome_digest, "{name}");
        assert_eq!(plain.config_digest, timed.config_digest, "{name}");
        assert_eq!(plain.events_processed, timed.events_processed, "{name}");

        let plain_tl = plain.manifest.as_ref().and_then(|m| m.timeline.as_ref());
        let timed_tl = timed.manifest.as_ref().and_then(|m| m.timeline.as_ref());
        assert!(plain_tl.is_none(), "{name}: untimed run grew a timeline");
        let s = timed_tl.unwrap_or_else(|| panic!("{name}: no timeline summary"));
        assert!(s.rows > 0, "{name}: empty capture");
        assert!(s.flows_sampled > 0, "{name}");
        // convergence_time in the rollup mirrors the manifest summary.
        assert_eq!(
            timed.metrics.as_ref().unwrap().convergence_time,
            s.time_to_alpha_fair,
            "{name}"
        );
        assert_eq!(plain.metrics.as_ref().unwrap().convergence_time, None);
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect live endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("full response");
    (head.to_string(), body.to_string())
}

/// End-to-end over real sockets: a served run publishes the exposition
/// and the rolling timeline, and the final publish leaves the completed
/// run visible until shutdown.
#[test]
fn live_endpoint_serves_metrics_and_timeline_over_http() {
    use ccsim::cca::CcaKind;
    use ccsim::experiments::{try_run_observed_live, FlowGroup, Scenario};
    use ccsim::sim::Bandwidth;

    let mut scenario = Scenario::edge_scale()
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            2,
            SimDuration::from_millis(20),
        )])
        .seed(5);
    scenario.bottleneck = Bandwidth::from_mbps(10);
    scenario.buffer_bytes = 100_000;
    scenario.warmup = SimDuration::from_secs(1);
    scenario.duration = SimDuration::from_secs(4);
    scenario.start_jitter = SimDuration::from_millis(100);
    scenario.convergence = None;

    let state = Arc::new(LiveState::new());
    let handle = serve(0, Arc::clone(&state)).expect("bind ephemeral port");
    let addr = handle.addr();

    let (obs, _) = try_run_observed_live(
        &scenario,
        ObserveOptions::timelined(),
        None,
        Some(Arc::clone(&state)),
        |_| {},
    )
    .expect("run succeeds");

    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert_eq!(body, obs.prometheus, "final publish shows the full run");

    let (head, body) = http_get(addr, "/timeline.jsonl");
    assert!(head.contains("application/x-ndjson"), "{head}");
    assert!(body.starts_with("{\"timeline\":"), "{body}");
    let rows = obs.timeline.as_ref().expect("timeline captured").rows();
    assert_eq!(body.lines().count() as u64, 1 + rows.len() as u64);

    assert!(state.hits() >= 2);
    handle.stop();
}

/// A timelined job's ledger line round-trips — including the
/// convergence_time metric and the embedded manifest timeline section —
/// while an untimed line never mentions either.
#[test]
fn timelined_ledger_entries_round_trip() {
    let mut spec = baseline_spec("ci-smoke");
    spec.base.duration = SimDuration::from_secs(6);
    spec.base.warmup = SimDuration::from_secs(1);

    let entry = run_first_job(&spec, Some(TimelineConfig::default()));
    assert!(entry.ok(), "{:?}", entry.error);
    let line = entry.to_json();
    assert!(line.contains("\"timeline\": {"), "{line}");

    let v = Json::parse(&line).expect("valid JSON line");
    let back = LedgerEntry::from_value(&v).expect("round-trip");
    assert_eq!(back, entry);

    let plain = run_first_job(&spec, None).to_json();
    assert!(!plain.contains("convergence_time"), "{plain}");
    assert!(!plain.contains("\"timeline\""), "{plain}");
}
