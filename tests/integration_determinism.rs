//! Whole-system determinism and seed-sensitivity: the reproducibility
//! guarantees everything else (EXPERIMENTS.md, regression baselines)
//! rests on.

use ccsim::cca::CcaKind;
use ccsim::experiments::{run, FlowGroup, Scenario};
use ccsim::sim::{Bandwidth, SimDuration};

fn scenario(seed: u64, cca: CcaKind) -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("determinism")
        .flows(vec![FlowGroup::new(cca, 6, SimDuration::from_millis(20))])
        .seed(seed);
    s.bottleneck = Bandwidth::from_mbps(25);
    s.buffer_bytes = 625_000;
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(6);
    s.start_jitter = SimDuration::from_millis(500);
    s.convergence = None;
    s
}

#[test]
fn identical_seeds_give_bit_identical_outcomes() {
    for cca in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr] {
        let a = run(&scenario(11, cca));
        let b = run(&scenario(11, cca));
        assert_eq!(a.events_processed, b.events_processed, "{cca}");
        assert_eq!(a.throughputs(), b.throughputs(), "{cca}");
        assert_eq!(a.aggregate_loss_rate, b.aggregate_loss_rate, "{cca}");
        assert_eq!(a.drop_burstiness, b.drop_burstiness, "{cca}");
        let ev_a: Vec<u64> = a.flows.iter().map(|f| f.congestion_events).collect();
        let ev_b: Vec<u64> = b.flows.iter().map(|f| f.congestion_events).collect();
        assert_eq!(ev_a, ev_b, "{cca}");
    }
}

#[test]
fn different_seeds_perturb_the_microstate() {
    let a = run(&scenario(1, CcaKind::Reno));
    let b = run(&scenario(2, CcaKind::Reno));
    // Different start jitter => different event interleavings.
    assert_ne!(a.events_processed, b.events_processed);
}

#[test]
fn physical_aggregates_are_seed_insensitive() {
    let outcomes: Vec<_> = (1..=4)
        .map(|seed| run(&scenario(seed, CcaKind::Reno)))
        .collect();
    let utils: Vec<f64> = outcomes.iter().map(|o| o.utilization()).collect();
    let spread =
        utils.iter().cloned().fold(0.0f64, f64::max) - utils.iter().cloned().fold(1.0f64, f64::min);
    assert!(
        spread < 0.05,
        "utilization spread {spread} across seeds: {utils:?}"
    );
}
