//! Property-based fault-injection guarantees: any valid generated fault
//! plan (1) survives a JSON round-trip exactly, (2) yields byte-identical
//! outcomes when the same seeded run repeats, and (3) never trips the
//! invariant watchdog — fault injection perturbs the *traffic*, not the
//! simulator's bookkeeping.
//!
//! Runs are whole simulations, so the case count is deliberately small;
//! the deterministic integration tests cover the per-fault-kind behavior.

use ccsim::cca::CcaKind;
use ccsim::experiments::{try_run, FlowGroup, Scenario};
use ccsim::fault::{FaultPlan, WatchdogConfig};
use ccsim::sim::{Bandwidth, SimDuration, SimTime};
use proptest::prelude::*;

/// Tiny but congested: 2 flows on 10 Mbps, 1 s warm-up + 2 s window.
fn tiny(seed: u64, cca: CcaKind) -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("fault-prop")
        .flows(vec![FlowGroup::new(cca, 2, SimDuration::from_millis(20))])
        .seed(seed);
    s.bottleneck = Bandwidth::from_mbps(10);
    s.buffer_bytes = 100_000;
    s.start_jitter = SimDuration::from_millis(200);
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(2);
    s.convergence = None;
    s
}

const HORIZON_MS: u64 = 3_000;

fn arb_cca() -> impl Strategy<Value = CcaKind> {
    (0u64..3).prop_map(|i| match i {
        0 => CcaKind::Reno,
        1 => CcaKind::Cubic,
        _ => CcaKind::Bbr,
    })
}

/// A valid plan by construction: action times inside the horizon, at most
/// one blackout (so overlaps cannot occur), probabilities in (0, 1].
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    let at = || 100u64..HORIZON_MS - 600;
    let blackout = proptest::option::of((at(), 50u64..500));
    let loss = proptest::option::of((at(), 0.001f64..0.2, proptest::bool::ANY));
    let reorder = proptest::option::of((at(), 0.01f64..0.5, 1u64..10));
    let dup = proptest::option::of((at(), 0.001f64..0.2));
    let bw = proptest::option::of((at(), 2u64..10));
    let delay = proptest::option::of((at(), 1u64..30));
    (blackout, loss, reorder, dup, bw, delay).prop_map(
        |(blackout, loss, reorder, dup, bw, delay)| {
            let mut plan = FaultPlan::none();
            if let Some((at, dur)) = blackout {
                plan = plan.blackout(SimTime::from_millis(at), SimDuration::from_millis(dur));
            }
            if let Some((at, rate, burst)) = loss {
                plan = if burst {
                    plan.burst_loss(SimTime::from_millis(at), rate, 0.5)
                } else {
                    plan.iid_loss(SimTime::from_millis(at), rate)
                };
            }
            if let Some((at, rate, extra_ms)) = reorder {
                plan = plan.reorder(
                    SimTime::from_millis(at),
                    rate,
                    SimDuration::from_millis(extra_ms),
                );
            }
            if let Some((at, rate)) = dup {
                plan = plan.duplicate(SimTime::from_millis(at), rate);
            }
            if let Some((at, mbps)) = bw {
                plan = plan.set_bandwidth(SimTime::from_millis(at), Bandwidth::from_mbps(mbps));
            }
            if let Some((at, ms)) = delay {
                plan = plan.set_extra_delay(SimTime::from_millis(at), SimDuration::from_millis(ms));
            }
            plan
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Plans round-trip through their JSON form exactly (times, rates,
    /// and kinds all preserved).
    #[test]
    fn plan_json_round_trips(plan in arb_plan()) {
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_json(), json);
    }

    /// Any generated valid plan: the watchdog-on run completes cleanly
    /// and repeats byte-for-byte under the same seed.
    #[test]
    fn faulted_watched_runs_are_clean_and_deterministic(
        plan in arb_plan(),
        seed in 1u64..1000,
        cca in arb_cca(),
    ) {
        let scenario = tiny(seed, cca)
            .faulted(plan)
            .watched(WatchdogConfig::every_slice());
        prop_assert!(scenario.validate().is_ok());
        let a = try_run(&scenario).unwrap_or_else(|e| panic!("watchdog/engine: {e}"));
        let b = try_run(&scenario).unwrap();
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(a.digest(), b.digest());
    }
}
