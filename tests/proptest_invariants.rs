//! Property-based tests on the core data structures and invariants, via
//! the public APIs of the workspace crates.

use ccsim::net::packet::{SackBlock, SackBlocks};
use ccsim::sim::{Bandwidth, SimDuration, SimTime};
use ccsim::tcp::rate::RateEstimator;
use ccsim::tcp::rtt::RttEstimator;
use ccsim::tcp::scoreboard::Scoreboard;
use proptest::prelude::*;

const MSS: u64 = 1000;

proptest! {
    /// Serialization time is monotone in frame size and inversely monotone
    /// in rate, and bytes_in ∘ serialization_time round-trips within one
    /// byte-time.
    #[test]
    fn bandwidth_serialization_monotone(
        bps in 1_000u64..100_000_000_000,
        a in 1u64..100_000,
        b in 1u64..100_000,
    ) {
        let bw = Bandwidth::from_bps(bps);
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(bw.serialization_time(small) <= bw.serialization_time(large));
        // Round trip: transmitting for the serialization time of n bytes
        // moves at least n-1 and at most n bytes (ceil rounding).
        let t = bw.serialization_time(large);
        let moved = bw.bytes_in(t);
        prop_assert!(moved >= large.saturating_sub(1));
        prop_assert!(moved <= large + bps / 8 / 1_000_000_000 + 1);
    }

    /// SimTime/SimDuration arithmetic associates with saturation.
    #[test]
    fn time_arithmetic_is_consistent(
        base_ns in 0u64..1u64 << 40,
        d1 in 0u64..1u64 << 30,
        d2 in 0u64..1u64 << 30,
    ) {
        let t = SimTime::from_nanos(base_ns);
        let a = SimDuration::from_nanos(d1);
        let b = SimDuration::from_nanos(d2);
        prop_assert_eq!((t + a) + b, (t + b) + a);
        prop_assert_eq!((t + a) - t, a);
        prop_assert_eq!(t.saturating_since(t + a), SimDuration::ZERO);
        prop_assert_eq!((t + a).saturating_since(t), a);
    }

    /// The RTT estimator's RTO never falls below the configured floor and
    /// SRTT stays within the sample envelope.
    #[test]
    fn rtt_estimator_stays_bounded(samples in prop::collection::vec(1u64..500, 1..100)) {
        let mut e = RttEstimator::default();
        let mut lo = u64::MAX;
        let mut hi = 0;
        for &ms in &samples {
            lo = lo.min(ms);
            hi = hi.max(ms);
            e.on_sample(SimDuration::from_millis(ms));
        }
        let srtt_ms = e.srtt().as_nanos() / 1_000_000;
        prop_assert!(srtt_ms >= lo.saturating_sub(1), "srtt {srtt_ms} < min {lo}");
        prop_assert!(srtt_ms <= hi + 1, "srtt {srtt_ms} > max {hi}");
        prop_assert!(e.rto() >= SimDuration::from_millis(200));
        prop_assert_eq!(e.min_rtt(), SimDuration::from_millis(lo));
    }

    /// Scoreboard conservation: in_flight + sacked + lost == outstanding
    /// under arbitrary interleavings of sends, cumulative ACKs, SACKs, and
    /// loss detection. (The scoreboard also self-checks in debug builds.)
    #[test]
    fn scoreboard_conserves_bytes(ops in prop::collection::vec(0u8..=4, 1..200)) {
        let mut board = Scoreboard::new(MSS as u32);
        let mut now_ms = 0u64;
        let mut rng_state = 0x12345678u64;
        let mut next_rand = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            rng_state >> 33
        };
        for op in ops {
            now_ms += 1;
            let now = SimTime::from_millis(now_ms);
            match op {
                // Send new data.
                0 | 1 => {
                    let tx = ccsim::tcp::rate::TxRecord {
                        sent_time: now,
                        delivered: 0,
                        delivered_time: SimTime::ZERO,
                        first_tx_time: SimTime::ZERO,
                        app_limited: false,
                    };
                    board.on_send_new(MSS, tx);
                }
                // Cumulative ACK of a random prefix.
                2 => {
                    if board.snd_nxt() > board.snd_una() {
                        let segs_out = (board.snd_nxt() - board.snd_una()) / MSS;
                        let k = next_rand() % (segs_out + 1);
                        let ack = board.snd_una() + k * MSS;
                        board.process_ack(now, ack, &SackBlocks::EMPTY);
                    }
                }
                // SACK a random aligned range above snd_una.
                3 => {
                    let segs_out = (board.snd_nxt() - board.snd_una()) / MSS;
                    if segs_out >= 2 {
                        let start_seg = 1 + next_rand() % (segs_out - 1);
                        let len_seg = 1 + next_rand() % (segs_out - start_seg);
                        let mut sack = SackBlocks::EMPTY;
                        sack.push(SackBlock {
                            start: board.snd_una() + start_seg * MSS,
                            end: board.snd_una() + (start_seg + len_seg) * MSS,
                        });
                        board.process_ack(now, 0, &sack);
                        board.detect_losses();
                    }
                }
                // Retransmit whatever is marked lost.
                _ => {
                    while let Some((seq, _end)) = board.next_lost_below(u64::MAX) {
                        let tx = ccsim::tcp::rate::TxRecord {
                            sent_time: now,
                            delivered: 0,
                            delivered_time: SimTime::ZERO,
                            first_tx_time: SimTime::ZERO,
                            app_limited: false,
                        };
                        board.mark_retransmitted(seq, tx);
                    }
                }
            }
            // The conservation invariant.
            let outstanding = board.snd_nxt() - board.snd_una();
            prop_assert_eq!(
                board.in_flight() + board.sacked_bytes() + board.lost_bytes(),
                outstanding
            );
            prop_assert!(board.in_flight() <= outstanding);
        }
    }

    /// Delivery-rate samples never exceed the instantaneous send rate of
    /// the synthetic pipeline generating them.
    #[test]
    fn rate_samples_are_bounded_by_send_rate(
        gap_us in 10u64..10_000,
        rtt_ms in 1u64..200,
        n in 10usize..100,
    ) {
        let mut est = RateEstimator::new();
        let mut recs = Vec::new();
        for i in 0..n as u64 {
            recs.push(est.on_send(SimTime::from_micros(i * gap_us), i == 0));
        }
        // The long-run send rate bounds pipelined samples; a lone packet's
        // sample legitimately measures pkt/RTT instead (its whole flight
        // was delivered within one RTT), so the true bound is the max.
        let send_rate = Bandwidth::from_bytes_per(
            1000,
            SimDuration::from_micros(gap_us),
        ).unwrap();
        let per_rtt_rate =
            Bandwidth::from_bytes_per(1000, SimDuration::from_millis(rtt_ms)).unwrap();
        let bound = send_rate.max(per_rtt_rate);
        let mut max_rate = Bandwidth::ZERO;
        for (i, rec) in recs.iter().enumerate() {
            let ack_at = SimTime::from_micros(i as u64 * gap_us)
                + SimDuration::from_millis(rtt_ms);
            let s = est.on_ack(ack_at, 1000, rec);
            if let Some(r) = s.delivery_rate {
                max_rate = max_rate.max(r);
            }
        }
        // Allow 0.1% rounding slack on the interval.
        prop_assert!(
            max_rate.as_bps() <= bound.as_bps() + bound.as_bps() / 1000 + 8,
            "sampled {max_rate} exceeds bound {bound}"
        );
    }
}
