//! Property-based tests for the dense flow-state slab: generation-keyed
//! slot reuse must never alias a live flow, whatever interleaving of
//! inserts and removes a workload produces.

use ccsim::tcp::slab::{FlowKey, FlowSlab, HotRow};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random slab workload: `true` inserts a new row, `false` removes the
/// oldest live key (no-op when empty).
fn ops() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(proptest::bool::ANY, 1..200)
}

fn row(tag: u64) -> HotRow {
    HotRow {
        cwnd_bytes: tag,
        inflight_bytes: tag.wrapping_mul(3),
        delivered_bytes: tag.wrapping_mul(7),
        ..HotRow::default()
    }
}

proptest! {
    /// Freed slots are recycled, but a stale key can never read or write a
    /// slot its flow no longer owns: every live key round-trips its own
    /// row, every removed key goes dead forever.
    #[test]
    fn slot_reuse_never_aliases_live_flows(plan in ops()) {
        let mut slab = FlowSlab::new();
        let mut live: Vec<(FlowKey, u64)> = Vec::new();
        let mut dead: Vec<FlowKey> = Vec::new();
        let mut tag = 0u64;

        for &insert in &plan {
            if insert {
                tag += 1;
                let key = slab.insert(row(tag));
                // A recycled slot must come back under a fresh generation.
                for (k, _) in &live {
                    prop_assert!(*k != key, "slab handed out a live key twice");
                }
                for k in &dead {
                    prop_assert!(*k != key, "recycled slot kept its dead generation");
                }
                live.push((key, tag));
            } else if !live.is_empty() {
                let (key, _) = live.remove(0);
                prop_assert!(slab.remove(key));
                prop_assert!(!slab.remove(key), "double remove must be a no-op");
                dead.push(key);
            }
        }

        prop_assert_eq!(slab.len(), live.len());
        // Live keys still read exactly what their flow wrote.
        for (key, tag) in &live {
            let got = slab.get(*key).expect("live key must resolve");
            prop_assert_eq!(got.cwnd_bytes, *tag);
            prop_assert_eq!(got.inflight_bytes, tag.wrapping_mul(3));
            prop_assert_eq!(got.delivered_bytes, tag.wrapping_mul(7));
        }
        // Dead keys stay dead: reads miss and writes are dropped rather
        // than landing in a recycled slot.
        for key in &dead {
            prop_assert!(!slab.contains(*key));
            prop_assert!(slab.get(*key).is_none());
            slab.write_sender(*key, u64::MAX, u64::MAX, u64::MAX, Default::default(), u64::MAX);
            slab.write_delivered(*key, u64::MAX);
        }
        for (key, tag) in &live {
            let got = slab.get(*key).expect("live key must resolve");
            prop_assert_eq!(got.cwnd_bytes, *tag, "stale write leaked into a live row");
            prop_assert_eq!(got.delivered_bytes, tag.wrapping_mul(7));
        }
    }

    /// Slots are dense and reused: the slab never holds more slots than
    /// the workload's concurrent-liveness high-water mark, and each live
    /// slot is owned by exactly one key.
    #[test]
    fn slot_count_tracks_the_liveness_high_water(plan in ops()) {
        let mut slab = FlowSlab::new();
        let mut live: Vec<FlowKey> = Vec::new();
        let mut high_water = 0usize;
        for &insert in &plan {
            if insert {
                live.push(slab.insert(HotRow::default()));
                high_water = high_water.max(live.len());
            } else if !live.is_empty() {
                let key = live.remove(0);
                slab.remove(key);
            }
        }
        prop_assert!(slab.capacity() <= high_water,
            "capacity {} exceeds liveness high-water {}", slab.capacity(), high_water);
        let mut owners: HashMap<u32, FlowKey> = HashMap::new();
        for key in &live {
            prop_assert!(owners.insert(key.slot(), *key).is_none(),
                "two live keys share slot {}", key.slot());
        }
    }
}
