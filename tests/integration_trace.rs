//! End-to-end flight-recorder tests: a real simulated run, recorded,
//! exported, and read back.

use ccsim::cca::CcaKind;
use ccsim::experiments::{Fidelity, FlowGroup, RunOutcome, Scenario};
use ccsim::sim::{Bandwidth, SimDuration};
use ccsim::trace::{read_binary, read_jsonl, write_binary, write_jsonl, RetentionPolicy};
use ccsim::trace::{TraceConfig, TraceKind};

/// A small traced scenario: 4 reno + 2 cubic on a 20 Mbps bottleneck.
fn traced_scenario(seed: u64, policy: RetentionPolicy) -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("traced-small")
        .flows(vec![
            FlowGroup::new(CcaKind::Reno, 4, SimDuration::from_millis(20)),
            FlowGroup::new(CcaKind::Cubic, 2, SimDuration::from_millis(40)),
        ])
        .seed(seed)
        .traced(TraceConfig {
            enabled: true,
            policy,
            max_bytes: 8 * 1024 * 1024,
            queue_sample_every: 16,
        });
    s.bottleneck = Bandwidth::from_mbps(20);
    s.buffer_bytes = 500_000;
    s.start_jitter = SimDuration::from_millis(300);
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(6);
    s.convergence = None;
    s
}

#[test]
fn traced_run_records_all_kinds() {
    let o = traced_scenario(3, RetentionPolicy::KeepAll).run();
    let trace = o.trace.as_ref().expect("trace enabled");
    assert_eq!(trace.meta.flows, 6);
    assert_eq!(trace.meta.seed, 3);
    assert_eq!(trace.meta.scenario, "traced-small");
    for kind in [
        TraceKind::Cwnd,
        TraceKind::Srtt,
        TraceKind::Phase,
        TraceKind::Congestion,
        TraceKind::QueueDepth,
        TraceKind::Drop,
    ] {
        assert!(
            trace.of_kind(kind).next().is_some(),
            "no {kind:?} records in a congested run"
        );
    }
    // Every flow produced a cwnd series, and records are time-sorted.
    for flow in 0..6 {
        assert!(!trace.cwnd_series(flow).is_empty(), "flow {flow}");
    }
    assert!(trace.records.windows(2).all(|w| w[0].time <= w[1].time));
    // The trace-level analysis entry points produce values on a lossy run.
    assert!(o
        .trace_synchronization_index(SimDuration::from_millis(10))
        .is_some());
    assert!(o.trace_drop_burstiness().is_some());
}

#[test]
fn untraced_run_records_nothing() {
    let mut s = traced_scenario(3, RetentionPolicy::KeepAll);
    s.trace = TraceConfig::disabled();
    let o = s.run();
    assert!(o.trace.is_none());
    assert!(o
        .trace_synchronization_index(SimDuration::from_millis(10))
        .is_none());
}

#[test]
fn same_seed_runs_export_byte_identical_binaries() {
    let export = |o: &RunOutcome| {
        let mut buf = Vec::new();
        write_binary(o.trace.as_ref().unwrap(), &mut buf).unwrap();
        buf
    };
    let a = traced_scenario(7, RetentionPolicy::Reservoir(2_000)).run();
    let b = traced_scenario(7, RetentionPolicy::Reservoir(2_000)).run();
    assert_eq!(export(&a), export(&b), "same seed, same bytes");
    let c = traced_scenario(8, RetentionPolicy::Reservoir(2_000)).run();
    assert_ne!(export(&a), export(&c), "different seed, different trace");
}

#[test]
fn real_trace_round_trips_through_both_formats() {
    let o = traced_scenario(5, RetentionPolicy::Decimate(3)).run();
    let trace = o.trace.as_ref().unwrap();
    assert!(trace.thinned > 0, "decimation engaged");

    let mut bin = Vec::new();
    write_binary(trace, &mut bin).unwrap();
    let from_bin = read_binary(&bin[..]).unwrap();
    assert_eq!(&from_bin, trace, "binary round trip");

    let mut jsonl = Vec::new();
    write_jsonl(trace, &mut jsonl).unwrap();
    let from_jsonl = read_jsonl(&jsonl[..]).unwrap();
    assert_eq!(&from_jsonl, trace, "JSONL round trip");
}

#[test]
fn retention_policies_bound_the_trace() {
    // A budget far below what KeepAll would record: the bound must hold
    // and the bookkeeping must show what was sacrificed.
    let mut s = traced_scenario(11, RetentionPolicy::KeepAll);
    s.trace.max_bytes = 64 * 1024;
    let o = s.run();
    let trace = o.trace.as_ref().unwrap();
    assert!(
        trace.wire_bytes() <= s.trace.max_bytes,
        "{} > {}",
        trace.wire_bytes(),
        s.trace.max_bytes
    );
    assert!(trace.evicted > 0, "tiny budget must evict");
}

/// The ISSUE acceptance bar: a 1000-flow CoreScale/5 mix with full
/// tracing completes, exports both formats, and the synchronization
/// index is identical across two same-seed runs.
#[test]
#[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
fn core_scale_thousand_flows_traced() {
    let scenario = || {
        let mut s = Scenario::core_scale()
            .named("CoreScale/5-traced")
            .flows(vec![
                FlowGroup::new(CcaKind::Reno, 500, SimDuration::from_millis(20)),
                FlowGroup::new(CcaKind::Cubic, 500, SimDuration::from_millis(20)),
            ])
            .seed(1)
            .fidelity(Fidelity::Quick)
            .traced(TraceConfig::standard());
        // 1/5th of CoreScale bandwidth and buffer, as in the experiments
        // module's scaled runs.
        s.bottleneck = Bandwidth::from_mbps(2_000);
        s.buffer_bytes = 50 * 1000 * 1000;
        s
    };
    let a = scenario().run();
    let trace = a.trace.as_ref().unwrap();
    assert!(trace.wire_bytes() <= TraceConfig::standard().max_bytes);
    assert!(!trace.records.is_empty());

    let mut bin = Vec::new();
    write_binary(trace, &mut bin).unwrap();
    let mut jsonl = Vec::new();
    write_jsonl(trace, &mut jsonl).unwrap();
    assert_eq!(read_binary(&bin[..]).unwrap(), *trace);

    let bin_width = SimDuration::from_millis(20);
    let sync_a = a.trace_synchronization_index(bin_width);
    assert!(sync_a.is_some(), "1000 congested flows must record events");

    let b = scenario().run();
    assert_eq!(sync_a, b.trace_synchronization_index(bin_width));
}
