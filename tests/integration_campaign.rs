//! Campaign-layer integration: parallel-vs-serial equivalence, ledger
//! durability under mid-campaign kill, and the regression sentinel.

use ccsim::campaign::{
    diff, run_campaign, Axis, AxisParam, CampaignSpec, DiffOptions, ExecutorOptions, FindingKind,
    Ledger, LedgerEntry, LedgerWriter, Tolerances,
};
use ccsim::cca::CcaKind;
use ccsim::experiments::{FlowGroup, Scenario};
use ccsim::sim::{Bandwidth, SimDuration};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ccsim-campaign-itest-{tag}-{}", std::process::id()))
}

/// A small two-axis campaign (2 CCAs x 2 seeds = 4 jobs) over short runs.
fn small_spec() -> CampaignSpec {
    let mut base = Scenario::edge_scale().flows(vec![FlowGroup::new(
        CcaKind::Reno,
        2,
        SimDuration::from_millis(20),
    )]);
    base.bottleneck = Bandwidth::from_mbps(10);
    base.buffer_bytes = 100_000;
    base.warmup = SimDuration::from_secs(1);
    base.duration = SimDuration::from_secs(3);
    base.start_jitter = SimDuration::from_millis(100);
    base.convergence = None;
    CampaignSpec {
        name: "itest".into(),
        base,
        axes: vec![Axis {
            param: AxisParam::Cca,
            values: vec!["reno".into(), "cubic".into()],
        }],
        seeds: vec![1, 2],
        expectations: Vec::new(),
        tolerances: Tolerances::default(),
    }
}

fn run_with_workers(workers: usize) -> Vec<LedgerEntry> {
    let jobs = small_spec().jobs().unwrap();
    let opts = ExecutorOptions {
        workers,
        ..ExecutorOptions::default()
    };
    run_campaign(jobs, &opts, |_| {})
        .iter()
        .map(LedgerEntry::from_result)
        .collect()
}

#[test]
fn parallel_campaign_matches_serial_byte_for_byte() {
    let serial = run_with_workers(1);
    let parallel = run_with_workers(8);
    assert_eq!(serial.len(), 4);
    assert_eq!(parallel.len(), 4);
    // Per-run outcome digests are identical in input order...
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(s.ok(), "{}: {:?}", s.job, s.error);
        assert_eq!(s.outcome_digest, p.outcome_digest, "{}", s.job);
        assert_eq!(s.config_digest, p.config_digest, "{}", s.job);
    }
    // ...and the sorted, wall-clock-normalized ledger lines are
    // byte-identical (the only thing parallelism may change is timing).
    let lines = |entries: &[LedgerEntry]| -> Vec<String> {
        let mut v: Vec<String> = entries.iter().map(|e| e.normalized().to_json()).collect();
        v.sort();
        v
    };
    assert_eq!(lines(&serial), lines(&parallel));
}

#[test]
fn ledger_survives_a_mid_campaign_kill() {
    let path = temp_path("kill.jsonl");
    let spec = small_spec();
    {
        let mut writer =
            LedgerWriter::create(&path, &spec.name, &spec.tolerances, &spec.expectations).unwrap();
        for entry in run_with_workers(1) {
            writer.append(&entry).unwrap();
        }
    }
    let full = std::fs::read_to_string(&path).unwrap();
    let clean = Ledger::load(&path).unwrap();
    assert_eq!(clean.entries.len(), 4);
    assert!(!clean.truncated);

    // Simulate the process dying mid-append: tear the final line.
    std::fs::write(&path, &full[..full.len() - 30]).unwrap();
    let torn = Ledger::load(&path).unwrap();
    assert!(torn.truncated);
    assert_eq!(torn.entries.len(), 3);
    assert_eq!(torn.campaign, "itest");
    // The surviving entries still index and diff cleanly against the
    // full ledger (the missing config shows up as a coverage finding).
    let report = diff(&clean, &torn, &DiffOptions::default());
    assert_eq!(report.count(FindingKind::Missing), 1);
    assert_eq!(report.compared, 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn sentinel_is_clean_on_rerun_and_fires_on_doctored_regressions() {
    let spec = small_spec();
    let to_ledger = |entries: Vec<LedgerEntry>| -> Ledger {
        let mut l = Ledger::new(spec.name.clone(), spec.tolerances);
        l.entries = entries;
        // Pin wall-clock throughput (aggregate and per-kind) so the eps
        // gates are deterministic in this test; real reruns on shared
        // hardware use --skip-eps.
        for e in &mut l.entries {
            e.events_per_sec = 1_000_000.0;
            for (_, eps) in &mut e.eps_by_kind {
                *eps = 250_000.0;
            }
        }
        l
    };
    let baseline = to_ledger(run_with_workers(2));
    let rerun = to_ledger(run_with_workers(4));
    assert!(
        diff(&baseline, &rerun, &DiffOptions::default()).is_clean(),
        "identical re-run must be clean: {}",
        diff(&baseline, &rerun, &DiffOptions::default()).render()
    );

    // Doctor a >10% events/sec regression into one entry.
    let mut slow = rerun.clone();
    slow.entries[1].events_per_sec = baseline.entries[1].events_per_sec * 0.80;
    let report = diff(&baseline, &slow, &DiffOptions::default());
    assert_eq!(report.count(FindingKind::EpsRegression), 1);
    assert!(!report.is_clean());
    // --skip-eps silences the throughput gate but nothing else.
    let skipped = diff(
        &baseline,
        &slow,
        &DiffOptions {
            eps_tol: None,
            check_eps: false,
        },
    );
    assert!(skipped.is_clean());

    // Doctor an outcome-digest flip: always fatal, even with --skip-eps.
    let mut broken = rerun.clone();
    broken.entries[0].outcome_digest = Some("0000000000000000".into());
    let report = diff(
        &baseline,
        &broken,
        &DiffOptions {
            eps_tol: None,
            check_eps: false,
        },
    );
    assert_eq!(report.count(FindingKind::DeterminismBreak), 1);
    assert!(!report.is_clean());
}
