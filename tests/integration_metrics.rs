//! Whole-system self-observability guarantees: metrics are inert (a run
//! observes identically with them on or off), and the per-run artifacts
//! — Prometheus exposition and JSON manifest — are well-formed and
//! internally consistent.

use ccsim::cca::CcaKind;
use ccsim::experiments::{run, run_observed, FlowGroup, Scenario};
use ccsim::sim::{Bandwidth, SimDuration};
use ccsim::telemetry::{validate_exposition, RunManifest};

fn scenario(seed: u64, cca: CcaKind) -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("observability")
        .flows(vec![FlowGroup::new(cca, 4, SimDuration::from_millis(20))])
        .seed(seed);
    s.bottleneck = Bandwidth::from_mbps(20);
    s.buffer_bytes = 250_000;
    s.warmup = SimDuration::from_secs(1);
    s.duration = SimDuration::from_secs(4);
    s.start_jitter = SimDuration::from_millis(300);
    s.convergence = None;
    s
}

/// The tentpole guarantee: attaching the full instrument set changes
/// nothing about the simulation. Same (scenario, seed) with metrics on
/// and off yields byte-identical outcome JSON and the same digest, for
/// every CCA family.
#[test]
fn metrics_on_and_off_produce_identical_outcomes() {
    for cca in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr] {
        let plain = run(&scenario(42, cca));
        let observed = run_observed(&scenario(42, cca));
        assert_eq!(plain.to_json(), observed.outcome.to_json(), "{cca}");
        assert_eq!(plain.digest(), observed.outcome.digest(), "{cca}");
        assert_eq!(
            format!("{:016x}", plain.digest()),
            observed.manifest.outcome_digest,
            "{cca}"
        );
    }
}

/// The Prometheus dump passes the exposition-format validator and carries
/// the headline families with plausible values.
#[test]
fn prometheus_dump_is_valid_and_populated() {
    let obs = run_observed(&scenario(7, CcaKind::Reno));
    validate_exposition(&obs.prometheus).expect("exposition format");
    for family in [
        "ccsim_events_total",
        "ccsim_events_pending_peak",
        "ccsim_events_per_sec",
        "ccsim_sim_wall_ratio",
        "ccsim_link_queue_bytes",
        "ccsim_link_busy_nanos_total",
        "ccsim_phase_wall_nanos_total",
    ] {
        assert!(obs.prometheus.contains(family), "missing {family}");
    }
}

/// The manifest round-trips through its JSON codec bit-exactly and its
/// fields agree with the outcome it describes.
#[test]
fn manifest_round_trips_and_matches_outcome() {
    let obs = run_observed(&scenario(9, CcaKind::Cubic));
    let m = &obs.manifest;
    assert_eq!(m.scenario, "observability");
    assert_eq!(m.seed, 9);
    assert_eq!(m.flows, 4);
    assert_eq!(m.events_processed, obs.outcome.events_processed);
    assert_eq!(m.peak_queue_bytes, obs.outcome.max_queue_bytes);
    assert_eq!(m.metric_bytes, obs.prometheus.len() as u64);
    assert!(m.wall_secs > 0.0);
    assert!(m.events_per_sec > 0.0);
    let back = RunManifest::from_json(&m.to_json()).expect("manifest json");
    assert_eq!(&back, m);
}
