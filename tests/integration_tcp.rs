//! Cross-crate integration tests: TCP endpoints + CCAs + network elements
//! assembled through the public facade, checked for transport-level
//! correctness (the properties any reviewer of the reproduction would
//! probe first).

use ccsim::cca::CcaKind;
use ccsim::experiments::{run, FlowGroup, Scenario};
use ccsim::sim::{Bandwidth, SimDuration};

/// One flow on a slow link must saturate it (minus header overhead).
#[test]
fn single_reno_flow_saturates_a_slow_link() {
    let mut s = Scenario::edge_scale()
        .named("single-flow")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            1,
            SimDuration::from_millis(20),
        )])
        .seed(1);
    s.bottleneck = Bandwidth::from_mbps(10);
    s.buffer_bytes = 250_000; // 1 BDP at 200 ms
    s.start_jitter = SimDuration::from_millis(100);
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(8);
    s.convergence = None;
    let o = run(&s);
    // Goodput ≥ 90% of line rate (headers cost ~3.5%, sawtooth the rest).
    assert!(o.utilization() > 0.90, "utilization = {}", o.utilization());
    assert!(o.utilization() <= 1.0 + 1e-9);
}

/// Each CCA must drive a lossy bottleneck without collapse or runaway.
#[test]
fn every_cca_survives_a_tiny_buffer() {
    for cca in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr] {
        let mut s = Scenario::edge_scale()
            .named("tiny-buffer")
            .flows(vec![FlowGroup::new(cca, 4, SimDuration::from_millis(20))])
            .seed(2);
        s.bottleneck = Bandwidth::from_mbps(20);
        s.buffer_bytes = 20 * 1500; // ~20 packets: heavy loss
        s.start_jitter = SimDuration::from_millis(100);
        s.warmup = SimDuration::from_secs(2);
        s.duration = SimDuration::from_secs(8);
        s.convergence = None;
        let o = run(&s);
        assert!(
            o.utilization() > 0.5,
            "{cca}: utilization collapsed to {}",
            o.utilization()
        );
        assert!(
            o.aggregate_loss_rate > 0.0,
            "{cca}: a 20-packet buffer must drop"
        );
        // Retransmissions happened and the connections kept delivering.
        let rtx: u64 = o.flows.iter().map(|f| f.retransmits).sum();
        assert!(rtx > 0, "{cca}: no retransmissions despite loss");
    }
}

/// Data integrity: everything the receivers delivered is contiguous
/// in-order bytes, so delivered bytes == receiver-side goodput exactly.
#[test]
fn receivers_deliver_contiguous_streams() {
    let mut s = Scenario::edge_scale()
        .named("integrity")
        .flows(vec![FlowGroup::new(
            CcaKind::Cubic,
            3,
            SimDuration::from_millis(50),
        )])
        .seed(3);
    s.bottleneck = Bandwidth::from_mbps(15);
    s.buffer_bytes = 50 * 1500;
    s.warmup = SimDuration::from_secs(2);
    s.start_jitter = SimDuration::from_millis(200);
    s.duration = SimDuration::from_secs(6);
    s.convergence = None;
    let o = run(&s);
    for f in &o.flows {
        // delivered_bytes is rcv_nxt-derived: strictly in-order data.
        assert!(f.delivered_bytes > 0);
        let implied_rate = f.delivered_bytes as f64 / o.measured_for.as_secs_f64();
        assert!((implied_rate - f.throughput_bytes_per_sec).abs() < 1.0);
    }
}

/// BBR must estimate bandwidth ≈ its fair share and keep the queue far
/// shorter than loss-based CCAs do.
#[test]
fn bbr_keeps_queues_shorter_than_cubic() {
    let base = |cca| {
        let mut s = Scenario::edge_scale()
            .named("queue-depth")
            .flows(vec![FlowGroup::new(cca, 4, SimDuration::from_millis(40))])
            .seed(4);
        s.bottleneck = Bandwidth::from_mbps(40);
        s.buffer_bytes = 2_000_000; // 1 BDP at 200ms + headroom
        s.warmup = SimDuration::from_secs(3);
        s.duration = SimDuration::from_secs(10);
        s.convergence = None;
        s
    };
    let cubic = run(&base(CcaKind::Cubic));
    let bbr = run(&base(CcaKind::Bbr));
    assert!(
        (bbr.max_queue_bytes as f64) < 0.9 * cubic.max_queue_bytes as f64,
        "bbr queue {} vs cubic queue {}",
        bbr.max_queue_bytes,
        cubic.max_queue_bytes
    );
    assert!(bbr.utilization() > 0.7, "bbr util = {}", bbr.utilization());
}

/// Flows with different RTTs coexist; shorter-RTT loss-based flows win
/// (the classic RTT-unfairness result, supported but not the paper's
/// focus — it scopes to same-RTT).
#[test]
fn rtt_unfairness_for_loss_based_ccas() {
    let mut s = Scenario::edge_scale()
        .named("rtt-unfair")
        .flows(vec![
            FlowGroup::new(CcaKind::Reno, 3, SimDuration::from_millis(10)),
            FlowGroup::new(CcaKind::Reno, 3, SimDuration::from_millis(100)),
        ])
        .seed(5);
    s.bottleneck = Bandwidth::from_mbps(30);
    // Keep the buffer well under a BDP: a full 750 KB queue at 30 Mbps
    // adds ~200 ms of queueing delay, compressing the effective RTT
    // ratio from 10:1 to ~1.4:1 and washing out the very asymmetry the
    // test measures. 150 KB caps that inflation at ~40 ms.
    s.buffer_bytes = 150_000;
    s.warmup = SimDuration::from_secs(3);
    // RTT unfairness is an asymptotic property: AIMD shares converge on
    // the scale of many long-RTT sawtooth periods, so measure for 30 s
    // (a 15 s window leaves the 100 ms flows still climbing from their
    // jittered starts and the short/long ratio hovers near the bar).
    s.duration = SimDuration::from_secs(30);
    s.convergence = None;
    let o = run(&s);
    let short: f64 = o.flows[..3]
        .iter()
        .map(|f| f.throughput_bytes_per_sec)
        .sum();
    let long: f64 = o.flows[3..]
        .iter()
        .map(|f| f.throughput_bytes_per_sec)
        .sum();
    assert!(
        short > 1.5 * long,
        "short-RTT {short} not favored over long-RTT {long}"
    );
}

/// Congestion events must be recorded and timestamped within the window.
#[test]
fn congestion_events_are_window_scoped() {
    let mut s = Scenario::edge_scale()
        .named("events")
        .flows(vec![FlowGroup::new(
            CcaKind::Reno,
            8,
            SimDuration::from_millis(20),
        )])
        .seed(6);
    s.bottleneck = Bandwidth::from_mbps(20);
    s.buffer_bytes = 100 * 1500;
    s.warmup = SimDuration::from_secs(3);
    s.duration = SimDuration::from_secs(10);
    s.convergence = None;
    let o = run(&s);
    let events: u64 = o.flows.iter().map(|f| f.congestion_events).sum();
    assert!(events > 0);
    // Sanity: with a small buffer, a reno flow halves at most a few times
    // per second; events can't exceed ~duration * flows * 50.
    assert!(events < 8 * 10 * 50, "implausible event count {events}");
}
