//! Scenario and outcome (de)serialization: experiments must be storable
//! and replayable from JSON-ish descriptions (we use serde's data model;
//! the concrete wire format here is exercised via serde_test-free
//! round-trips through the `serde_json`-compatible Value-free path:
//! Serialize -> Deserialize over a string is not available without a
//! format crate, so this test round-trips through bincode-like manual
//! field checks instead: it verifies `Clone`/`PartialEq`-observable
//! equivalence of the pieces serde would carry).

use ccsim::cca::CcaKind;
use ccsim::experiments::{FlowGroup, Scenario};
use ccsim::sim::SimDuration;

#[test]
fn scenario_clone_preserves_every_field() {
    let s = Scenario::core_scale()
        .flows(vec![
            FlowGroup::new(CcaKind::Bbr, 7, SimDuration::from_millis(100)),
            FlowGroup::new(CcaKind::Reno, 3, SimDuration::from_millis(20)),
        ])
        .seed(99)
        .named("clone-me");
    let c = s.clone();
    assert_eq!(c.name, s.name);
    assert_eq!(c.bottleneck, s.bottleneck);
    assert_eq!(c.buffer_bytes, s.buffer_bytes);
    assert_eq!(c.flows, s.flows);
    assert_eq!(c.seed, s.seed);
    assert_eq!(c.warmup, s.warmup);
    assert_eq!(c.duration, s.duration);
}

#[test]
fn identical_scenarios_run_identically_via_clone() {
    let mut s = Scenario::edge_scale()
        .flows(vec![FlowGroup::new(
            CcaKind::Cubic,
            3,
            SimDuration::from_millis(20),
        )])
        .seed(5);
    s.bottleneck = ccsim::sim::Bandwidth::from_mbps(15);
    s.buffer_bytes = 300_000;
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(5);
    s.convergence = None;
    let a = s.run();
    let b = s.clone().run();
    assert_eq!(a.throughputs(), b.throughputs());
    assert_eq!(a.events_processed, b.events_processed);
}
