//! Whole-system fault-injection guarantees: each fault kind perturbs the
//! run in the physically expected direction, faulted runs stay seed-
//! deterministic, the invariant watchdog is digest-inert and stays clean
//! on healthy runs, and a caught failure round-trips through a crash
//! bundle into an identical replay.

use ccsim::cca::CcaKind;
use ccsim::experiments::{
    run, run_guarded, try_run, CrashBundle, FlowGroup, GuardOptions, Scenario, SimError,
};
use ccsim::fault::{FaultPlan, WatchdogConfig};
use ccsim::sim::{Bandwidth, SimDuration, SimTime};
use std::path::PathBuf;

/// 4 Reno flows on 20 Mbps: small enough for CI, congested enough that
/// loss/blackout effects are unmistakable. Warm-up 2 s, measure 10 s.
fn small(seed: u64, cca: CcaKind) -> Scenario {
    let mut s = Scenario::edge_scale()
        .named("fault-small")
        .flows(vec![FlowGroup::new(cca, 4, SimDuration::from_millis(20))])
        .seed(seed);
    s.bottleneck = Bandwidth::from_mbps(20);
    s.buffer_bytes = 250_000;
    s.start_jitter = SimDuration::from_millis(300);
    s.warmup = SimDuration::from_secs(2);
    s.duration = SimDuration::from_secs(10);
    s.convergence = None;
    s
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccsim-fault-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mid-measurement blackout longer than any RTO must force genuine
/// retransmission timeouts that the clean run does not have.
#[test]
fn blackout_forces_rtos() {
    let clean = run(&small(3, CcaKind::Reno));
    let faulted = run(&small(3, CcaKind::Reno)
        .faulted(FaultPlan::none().blackout(SimTime::from_secs(6), SimDuration::from_secs(2))));
    let clean_rtos: u64 = clean.flows.iter().map(|f| f.rtos).sum();
    let faulted_rtos: u64 = faulted.flows.iter().map(|f| f.rtos).sum();
    assert!(
        faulted_rtos > clean_rtos,
        "blackout produced no extra RTOs ({clean_rtos} -> {faulted_rtos})"
    );
    // Two seconds of the ten-second window were dark: aggregate
    // throughput must drop materially.
    assert!(
        faulted.aggregate_throughput_mbps() < 0.9 * clean.aggregate_throughput_mbps(),
        "blackout barely moved throughput: {} vs {}",
        faulted.aggregate_throughput_mbps(),
        clean.aggregate_throughput_mbps()
    );
}

/// Injected i.i.d. loss must push throughput down (the Mathis direction:
/// higher p, lower rate) and show up in the aggregate loss rate.
#[test]
fn iid_loss_cuts_throughput_in_the_mathis_direction() {
    let clean = run(&small(4, CcaKind::Reno));
    let faulted =
        run(&small(4, CcaKind::Reno)
            .faulted(FaultPlan::none().iid_loss(SimTime::from_secs(1), 0.05)));
    assert!(
        faulted.aggregate_loss_rate > 0.03,
        "injected 5% loss, measured {}",
        faulted.aggregate_loss_rate
    );
    assert!(
        faulted.aggregate_throughput_mbps() < 0.8 * clean.aggregate_throughput_mbps(),
        "5% loss should slash Reno throughput: {} vs {} Mbps",
        faulted.aggregate_throughput_mbps(),
        clean.aggregate_throughput_mbps()
    );
}

/// The same seeded faulted scenario twice: byte-identical outcome JSON.
#[test]
fn faulted_runs_are_seed_deterministic() {
    let plan = FaultPlan::none()
        .iid_loss(SimTime::from_secs(3), 0.02)
        .reorder(SimTime::from_secs(5), 0.1, SimDuration::from_millis(5))
        .duplicate(SimTime::from_secs(7), 0.05)
        .blackout(SimTime::from_secs(9), SimDuration::from_millis(500));
    let a = run(&small(11, CcaKind::Cubic).faulted(plan.clone()));
    let b = run(&small(11, CcaKind::Cubic).faulted(plan));
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.digest(), b.digest());
}

/// Watchdog inertness: enabling every-slice checks changes nothing about
/// the outcome, for every CCA family, fault plan present or not.
#[test]
fn watchdog_is_digest_inert() {
    for cca in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr] {
        let plan = FaultPlan::none().iid_loss(SimTime::from_secs(4), 0.01);
        let plain = run(&small(42, cca).faulted(plan.clone()));
        let watched = try_run(
            &small(42, cca)
                .faulted(plan)
                .watched(WatchdogConfig::every_slice()),
        )
        .unwrap_or_else(|e| panic!("{cca}: watchdog tripped on a healthy run: {e}"));
        assert_eq!(plain.to_json(), watched.to_json(), "{cca}");
        assert_eq!(plain.digest(), watched.digest(), "{cca}");
    }
}

/// Healthy faulted runs (blackout + loss + reorder) keep every invariant:
/// the watchdog stays clean across CCA families.
#[test]
fn watchdog_stays_clean_under_faults() {
    let plan = FaultPlan::none()
        .blackout(SimTime::from_secs(4), SimDuration::from_millis(800))
        .iid_loss(SimTime::from_secs(6), 0.03)
        .reorder(SimTime::from_secs(8), 0.2, SimDuration::from_millis(3));
    for (seed, cca) in [(1, CcaKind::Reno), (2, CcaKind::Cubic), (3, CcaKind::Bbr)] {
        let s = small(seed, cca)
            .faulted(plan.clone())
            .watched(WatchdogConfig::every_slice());
        try_run(&s).unwrap_or_else(|e| panic!("{cca}: {e}"));
    }
}

/// The crash pipeline end to end: a forced panic is caught, the bundle is
/// written and loadable, and replaying it twice gives identical digests —
/// the bundle really does capture the full configuration.
#[test]
fn forced_panic_round_trips_through_a_crash_bundle() {
    let base = temp_dir("bundle");
    let scenario =
        small(77, CcaKind::Reno).faulted(FaultPlan::none().iid_loss(SimTime::from_secs(3), 0.02));
    let opts = GuardOptions {
        bundle_dir: Some(base.clone()),
        force_panic_at: Some(SimTime::from_secs(5)),
    };
    let failure = run_guarded(&scenario, &opts).unwrap_err();
    assert!(matches!(failure.error, SimError::Panic { .. }));
    let dir = failure.bundle.expect("bundle written");

    let bundle = CrashBundle::load(&dir).unwrap();
    assert_eq!(bundle.error_class, "panic");
    assert_eq!(bundle.scenario.seed, 77);
    assert_eq!(bundle.scenario.fault, scenario.fault);

    // The panic was injected from outside the simulation: the captured
    // scenario replays clean, and deterministically.
    let a = bundle.replay().unwrap();
    let b = bundle.replay().unwrap();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.digest(), b.digest());
    // And the replay matches a direct run of the original scenario.
    let direct = run(&scenario);
    assert_eq!(direct.digest(), a.digest());
    let _ = std::fs::remove_dir_all(&base);
}

/// An invariant violation aborts the run as a typed error (not a panic)
/// and its bundle carries the watchdog report.
#[test]
fn scenario_and_engine_failures_stay_typed() {
    // Invalid scenario: typed ScenarioError, surfaced before building.
    let bad = Scenario::edge_scale().named("no-flows");
    match try_run(&bad) {
        Err(SimError::Scenario(_)) => {}
        other => panic!("expected Scenario error, got {other:?}"),
    }
    // The panicking entry point still panics with the same message.
    let caught = std::panic::catch_unwind(|| run(&bad)).unwrap_err();
    let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("no flows"), "panic message: {msg}");
}
