//! `ccsim` — run ad-hoc congestion-control experiments from the shell.
//!
//! ```text
//! ccsim run   [--setting edge|core] [--bw <mbps>] [--buffer <bytes>]
//!             [--flows <cca>:<count>:<rtt_ms> ...] [--seed N]
//!             [--topology single|dumbbell|parking_lot:<n>|dumbbell_asym]
//!             [--aqm droptail|red|codel|pie] [--ecn]
//!             [--warmup <s>] [--duration <s>] [--jitter <s>]
//!             [--fidelity quick|standard|paper] [--json]
//!             [--metrics <path>] [--quiet]
//!             [--timeline] [--timeline-window <ms>] [--timeline-out <path>]
//!             [--serve <port>]
//! ccsim trace <run flags> [--out <prefix>] [--format jsonl|bin|both]
//!             [--policy keepall|decimate:N|reservoir:K]
//!             [--trace-budget <bytes>] [--queue-every <n>]
//!             [--sync-bin <ms>]
//! ccsim perf  <run flags> [--folded <path>] [--stride <events>]
//! ccsim timeline <run flags> [--window <ms>] [--budget <bytes>]
//!             [--max-flows <n>] [--out <path>] [--format jsonl|cctl]
//!             [--serve <port>]
//! ccsim replay <bundle-dir> [--json] [--quiet]
//! ccsim bisect <a.json> <b.json> [--out <dir>]
//! ccsim campaign run <spec.json> [--workers N] [--ledger <path>] ...
//! ccsim campaign report <ledger.jsonl> [--out <path>] [--html]
//! ccsim campaign diff <baseline.jsonl> <current.jsonl> [--skip-eps]
//! ```
//!
//! `trace` runs the same experiment with the flight recorder enabled,
//! writes `<prefix>.jsonl` / `<prefix>.cctr`, and reports the
//! trace-derived loss-synchronization index and drop burstiness.
//!
//! `perf` runs the same experiment with the digest-inert `ccsim-prof`
//! profiler attached and prints the per-(component class × event kind)
//! attribution matrix, timer-wheel scheduler counters, and subsystem
//! memory accounts; `--folded <path>` writes a folded-stack file for
//! flamegraph tooling and `--stride` tunes the wall-clock sampling
//! stride. The simulated outcome is bit-identical with or without it.
//!
//! `--metrics <path>` additionally observes the run: a Prometheus
//! text-exposition dump is written to `<path>` and a provenance manifest
//! to `<path with extension .manifest.json>`. Observation is inert — the
//! simulated outcome is bit-identical with or without it.
//!
//! `timeline` runs the experiment with the windowed time-series sampler
//! attached (also digest-inert) and prints the capture summary — rows,
//! eviction, time-to-α-fair — plus a unicode JFI trajectory; `--out`
//! exports the retained rows as JSONL or columnar `.cctl`. The same
//! sampler rides along on a plain `run` via `--timeline`
//! (`--timeline-window` tunes the window, `--timeline-out` exports; a
//! `.cctl` extension selects the binary form). `--serve <port>` binds
//! `127.0.0.1:<port>` for the duration of the run and serves the live
//! Prometheus exposition at `/metrics` and the rolling timeline at
//! `/timeline.jsonl`, refreshed at every progress slice.
//!
//! Robustness flags (shared by `run` and `trace`):
//!
//! * `--fault <spec>` (repeatable) schedules a timed link impairment;
//!   specs are `blackout:<at_s>:<dur_s>`, `bw:<at_s>:<mbps>`,
//!   `delay:<at_s>:<ms>`, `loss:<at_s>:<rate>` (rate 0 clears),
//!   `burstloss:<at_s>:<enter>:<exit>`, `reorder:<at_s>:<rate>:<ms>`,
//!   `dup:<at_s>:<rate>`. Fault plans are deterministic for a seed.
//! * `--watchdog` checks runtime invariants (packet conservation, queue
//!   bounds, cwnd sanity, clock monotonicity) at every snapshot slice.
//! * `--crash-dir <dir>` catches failures — typed errors, watchdog
//!   violations, panics — and writes a replayable crash bundle there.
//! * `--force-panic <s>` (testing) panics mid-run at the given simulated
//!   time to exercise the crash path; combine with `--crash-dir`.
//!
//! `replay` loads a crash bundle and re-runs its exact scenario (same
//! seed, same fault plan), reporting whether the failure reproduces.
//!
//! Checkpoint/restore (`run` and `perf`): `--checkpoint-at <s>` captures
//! a versioned, digest-stamped snapshot of the full engine state at the
//! first snapshot-slice boundary at or after `<s>` simulated seconds and
//! writes it to `--checkpoint-out` (default `ccsim.ckpt`); the run then
//! continues to its normal end. `ccsim run --resume-from <ckpt>`
//! restores the snapshot (scenario included — no other flags needed) and
//! runs to the horizon, producing an outcome byte-identical to the
//! uninterrupted run. `ccsim bisect a.json b.json` binary-searches two
//! scenarios' checkpoint slices for the first divergent slice.
//!
//! `campaign` drives whole parameter sweeps: `run` expands a JSON spec
//! (scenario template × axes × seeds) onto a worker pool and appends
//! every result to a JSONL ledger, `report` renders a ledger as a
//! Markdown/HTML fidelity report, and `diff` is the regression sentinel
//! comparing two ledgers (determinism breaks, paper-metric drift,
//! events/sec regressions). See `ccsim campaign --help`.
//!
//! Examples:
//!
//! ```sh
//! # The paper's Figure 5 in one line: 25 cubic vs 25 reno on EdgeScale.
//! ccsim run --setting edge --flows cubic:25:20 --flows reno:25:20
//!
//! # A mini-CoreScale BBR fairness probe with self-observability.
//! ccsim run --setting core --bw 1000 --flows bbr:100:20 --duration 20 \
//!     --metrics out.prom
//!
//! # Record a traced run, thinned to a 16 MB budget.
//! ccsim trace --flows reno:10:20 --fidelity quick \
//!     --policy decimate:4 --trace-budget 16000000 --out /tmp/reno10
//! ```

use ccsim::cca::CcaKind;
use ccsim::experiments::{
    run_guarded_with_progress, run_with_progress, CrashBundle, Fidelity, FlowGroup, GuardOptions,
    LiveState, ObserveOptions, RunOutcome, Scenario, Timeline, TimelineConfig,
};
use ccsim::fault::{FaultPlan, WatchdogConfig};
use ccsim::net::AqmKind;
use ccsim::sim::{Bandwidth, SimDuration, SimTime};
use ccsim::telemetry::{validate_exposition, RunProgress};
use ccsim::topo::TopologyKind;
use ccsim::trace::{RetentionPolicy, TraceConfig};
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: ccsim run [--setting edge|core] [--bw <mbps>] \
    [--buffer <bytes>] --flows <cca>:<count>:<rtt_ms> [--flows ...] \
    [--topology single|dumbbell|parking_lot:<n>|dumbbell_asym] \
    [--aqm droptail|red|codel|pie] [--ecn] \
    [--seed N] [--warmup <s>] [--duration <s>] [--jitter <s>] \
    [--fidelity quick|standard|paper] [--json] [--metrics <path>] [--quiet] \
    [--timeline] [--timeline-window <ms>] [--timeline-out <path>] \
    [--serve <port>] \
    [--fault <spec> ...] [--watchdog] [--crash-dir <dir>] [--force-panic <s>] \
    [--checkpoint-at <s>] [--checkpoint-out <path>] [--resume-from <ckpt>]\n\
    \x20      ccsim trace <run flags> [--out <prefix>] \
    [--format jsonl|bin|both] [--policy keepall|decimate:N|reservoir:K] \
    [--trace-budget <bytes>] [--queue-every <n>] [--sync-bin <ms>]\n\
    \x20      ccsim perf <run flags> [--folded <path>] [--stride <events>]\n\
    \x20      ccsim timeline <run flags> [--window <ms>] [--budget <bytes>] \
    [--max-flows <n>] [--out <path>] [--format jsonl|cctl] [--serve <port>]\n\
    \x20      ccsim replay <bundle-dir> [--json] [--quiet]\n\
    \x20      ccsim bisect <a.json> <b.json> [--out <dir>]\n\
    \x20      ccsim campaign run|report|diff ... (ccsim campaign --help)\n\
    ccas: reno, cubic, bbr, vegas\n\
    fault specs: blackout:<at_s>:<dur_s>  bw:<at_s>:<mbps>  delay:<at_s>:<ms>\n\
    \x20            loss:<at_s>:<rate>  burstloss:<at_s>:<enter>:<exit>\n\
    \x20            reorder:<at_s>:<rate>:<ms>  dup:<at_s>:<rate>";

/// Bad invocation: complaint + usage to stderr, exit 2.
fn usage(err: &str) -> ! {
    eprintln!("{err}\n\n{USAGE}");
    std::process::exit(2);
}

/// Requested help: usage to stdout, exit 0.
fn help() -> ! {
    println!("{USAGE}");
    println!(
        "\n--metrics <path> writes a Prometheus metrics dump to <path> and a\n\
         run manifest to <path>.manifest.json; the simulated outcome is\n\
         unchanged. --quiet suppresses the live progress line.\n\
         timeline attaches the windowed time-series sampler (digest-inert)\n\
         and prints the capture summary plus a unicode JFI trajectory;\n\
         --out exports the retained rows (--format jsonl|cctl). The same\n\
         sampler rides on run via --timeline/--timeline-window/--timeline-out\n\
         (a .cctl extension selects the binary form). --serve <port> serves\n\
         the live run at http://127.0.0.1:<port>/metrics and\n\
         /timeline.jsonl until the run completes.\n\
         perf runs the same experiment with the ccsim-prof event-attribution\n\
         profiler attached (digest-inert) and prints the per-(class x kind)\n\
         wall-time/event matrix, timer-wheel counters, and memory accounts;\n\
         --folded <path> additionally writes a folded-stack file for\n\
         flamegraph tooling, --stride <events> sets the wall-clock sampling\n\
         stride (default {}).",
        ccsim::prof::DEFAULT_STRIDE
    );
    std::process::exit(0);
}

fn parse_policy(spec: &str) -> RetentionPolicy {
    if spec == "keepall" {
        return RetentionPolicy::KeepAll;
    }
    if let Some(n) = spec.strip_prefix("decimate:") {
        let n: u32 = n.parse().unwrap_or_else(|_| usage("bad decimate factor"));
        return RetentionPolicy::Decimate(n.max(1));
    }
    if let Some(k) = spec.strip_prefix("reservoir:") {
        let k: u32 = k.parse().unwrap_or_else(|_| usage("bad reservoir size"));
        return RetentionPolicy::Reservoir(k.max(1));
    }
    usage(&format!("bad --policy '{spec}'"));
}

fn parse_flows(spec: &str) -> FlowGroup {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        usage(&format!(
            "bad --flows spec '{spec}' (want cca:count:rtt_ms)"
        ));
    }
    let cca: CcaKind = parts[0]
        .parse()
        .unwrap_or_else(|e| usage(&format!("bad CCA in '{spec}': {e}")));
    let count: u32 = parts[1]
        .parse()
        .unwrap_or_else(|_| usage(&format!("bad count in '{spec}'")));
    let rtt_ms: u64 = parts[2]
        .parse()
        .unwrap_or_else(|_| usage(&format!("bad rtt in '{spec}'")));
    FlowGroup::new(cca, count, SimDuration::from_millis(rtt_ms))
}

/// Parse one `--fault` spec onto the plan (times are seconds, possibly
/// fractional).
fn parse_fault(plan: FaultPlan, spec: &str) -> FaultPlan {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> f64 {
        s.parse()
            .unwrap_or_else(|_| usage(&format!("bad number '{s}' in --fault '{spec}'")))
    };
    let at = |parts: &[&str]| SimTime::from_secs_f64(num(parts[1]));
    match (parts[0], parts.len()) {
        ("blackout", 3) => plan.blackout(at(&parts), SimDuration::from_secs_f64(num(parts[2]))),
        ("bw", 3) => plan.set_bandwidth(at(&parts), Bandwidth::from_mbps(num(parts[2]) as u64)),
        ("delay", 3) => {
            plan.set_extra_delay(at(&parts), SimDuration::from_secs_f64(num(parts[2]) / 1e3))
        }
        ("loss", 3) => {
            let rate = num(parts[2]);
            if rate == 0.0 {
                plan.clear_loss(at(&parts))
            } else {
                plan.iid_loss(at(&parts), rate)
            }
        }
        ("burstloss", 4) => plan.burst_loss(at(&parts), num(parts[2]), num(parts[3])),
        ("reorder", 4) => plan.reorder(
            at(&parts),
            num(parts[2]),
            SimDuration::from_secs_f64(num(parts[3]) / 1e3),
        ),
        ("dup", 3) => plan.duplicate(at(&parts), num(parts[2])),
        _ => usage(&format!("bad --fault spec '{spec}' (see fault specs)")),
    }
}

/// Everything the flag parser produces. The `run`, `trace`, `perf`, and
/// `timeline` subcommands share one parser: `trace` is `run` plus the
/// trace-only flags, `perf` is `run` plus the profiler flags, `timeline`
/// is `run` plus the sampler flags; mode-specific flags are rejected
/// under the other modes.
struct Cli {
    tracing: bool,
    perf: bool,
    timeline_cmd: bool,
    scenario: Scenario,
    json: bool,
    quiet: bool,
    metrics_out: Option<String>,
    out: String,
    format: String,
    sync_bin: SimDuration,
    crash_dir: Option<PathBuf>,
    force_panic: Option<SimTime>,
    folded_out: Option<String>,
    stride: u64,
    checkpoint_at: Option<SimTime>,
    checkpoint_out: PathBuf,
    resume_from: Option<PathBuf>,
    timeline: Option<TimelineConfig>,
    timeline_out: Option<String>,
    timeline_format: String,
    serve_port: Option<u16>,
}

fn parse_cli(args: &[String]) -> Cli {
    if args
        .iter()
        .any(|a| matches!(a.as_str(), "--help" | "-h" | "help"))
    {
        help();
    }
    let (tracing, perf, timeline_cmd) = match args.first().map(String::as_str) {
        Some("run") => (false, false, false),
        Some("trace") => (true, false, false),
        Some("perf") => (false, true, false),
        Some("timeline") => (false, false, true),
        _ => usage("expected subcommand 'run', 'trace', 'perf', or 'timeline'"),
    };
    let mut scenario = Scenario::edge_scale().named("cli");
    let mut flows = Vec::new();
    let mut json = false;
    let mut quiet = false;
    let mut metrics_out = None;
    let mut fidelity = None;
    let mut out = String::from("trace");
    let mut format = String::from("both");
    let mut trace_cfg = TraceConfig::standard();
    let mut sync_bin = SimDuration::from_millis(10);
    let mut fault = FaultPlan::none();
    let mut watchdog = false;
    let mut crash_dir = None;
    let mut force_panic = None;
    let mut folded_out = None;
    let mut stride = ccsim::prof::DEFAULT_STRIDE;
    let mut checkpoint_at = None;
    let mut checkpoint_out = PathBuf::from("ccsim.ckpt");
    let mut resume_from = None;
    // The sampler is always on under the timeline subcommand; `run` opts
    // in with --timeline (or any --timeline-* flag).
    let mut timeline = timeline_cmd.then(TimelineConfig::default);
    let mut timeline_out = None;
    let mut timeline_format = String::from("jsonl");
    let mut serve_port = None;
    let mut i = 1;
    while i < args.len() {
        let take = |i: &mut usize| -> &String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| usage("missing value"))
        };
        match args[i].as_str() {
            // ----- flags shared by `run` and `trace` ---------------------
            "--setting" => {
                scenario = match take(&mut i).as_str() {
                    "edge" => Scenario::edge_scale(),
                    "core" => Scenario::core_scale(),
                    other => usage(&format!("bad --setting {other}")),
                }
                .named("cli");
            }
            "--bw" => {
                let mbps: u64 = take(&mut i).parse().unwrap_or_else(|_| usage("bad --bw"));
                scenario.bottleneck = Bandwidth::from_mbps(mbps);
            }
            "--buffer" => {
                scenario.buffer_bytes = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --buffer"));
            }
            "--topology" => {
                let name = take(&mut i);
                scenario.topology = TopologyKind::parse(name)
                    .unwrap_or_else(|| usage(&format!("bad --topology {name}")));
            }
            "--aqm" => {
                let name = take(&mut i);
                scenario.aqm =
                    AqmKind::parse(name).unwrap_or_else(|| usage(&format!("bad --aqm {name}")));
            }
            "--ecn" => scenario.ecn = true,
            "--flows" => flows.push(parse_flows(take(&mut i))),
            "--seed" => {
                scenario.seed = take(&mut i).parse().unwrap_or_else(|_| usage("bad --seed"));
            }
            "--warmup" => {
                scenario.warmup = SimDuration::from_secs(
                    take(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage("bad --warmup")),
                );
            }
            "--duration" => {
                scenario.duration = SimDuration::from_secs(
                    take(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage("bad --duration")),
                );
            }
            "--jitter" => {
                scenario.start_jitter = SimDuration::from_secs(
                    take(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage("bad --jitter")),
                );
            }
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--metrics" => metrics_out = Some(take(&mut i).clone()),
            "--timeline" => {
                timeline.get_or_insert_with(TimelineConfig::default);
            }
            "--timeline-window" => {
                let ms: u64 = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --timeline-window"));
                if ms == 0 {
                    usage("--timeline-window must be at least 1 ms");
                }
                timeline.get_or_insert_with(TimelineConfig::default).window =
                    SimDuration::from_millis(ms);
            }
            "--timeline-out" => {
                let path = take(&mut i).clone();
                if path.ends_with(".cctl") {
                    timeline_format = String::from("cctl");
                }
                timeline_out = Some(path);
                timeline.get_or_insert_with(TimelineConfig::default);
            }
            "--serve" => {
                serve_port = Some(
                    take(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage("bad --serve port")),
                );
            }
            "--fault" => fault = parse_fault(fault, take(&mut i)),
            "--watchdog" => watchdog = true,
            "--crash-dir" => crash_dir = Some(PathBuf::from(take(&mut i))),
            "--force-panic" => {
                let secs: f64 = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --force-panic"));
                force_panic = Some(SimTime::from_secs_f64(secs));
            }
            "--checkpoint-at" => {
                let secs: f64 = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --checkpoint-at"));
                checkpoint_at = Some(SimTime::from_secs_f64(secs));
            }
            "--checkpoint-out" => checkpoint_out = PathBuf::from(take(&mut i)),
            "--resume-from" => resume_from = Some(PathBuf::from(take(&mut i))),
            "--fidelity" => {
                fidelity = Some(match take(&mut i).as_str() {
                    "quick" => Fidelity::Quick,
                    "standard" => Fidelity::Standard,
                    "paper" => Fidelity::Paper,
                    other => usage(&format!("bad --fidelity {other}")),
                });
            }
            // ----- perf-only flags ---------------------------------------
            "--folded" if perf => folded_out = Some(take(&mut i).clone()),
            "--stride" if perf => {
                stride = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --stride"));
                if stride == 0 {
                    usage("--stride must be at least 1");
                }
            }
            other if matches!(other, "--folded" | "--stride") => {
                usage(&format!("{other} is only valid with the perf subcommand"))
            }
            // ----- timeline-only flags -----------------------------------
            "--window" if timeline_cmd => {
                let ms: u64 = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --window"));
                if ms == 0 {
                    usage("--window must be at least 1 ms");
                }
                timeline.get_or_insert_with(TimelineConfig::default).window =
                    SimDuration::from_millis(ms);
            }
            "--budget" if timeline_cmd => {
                timeline
                    .get_or_insert_with(TimelineConfig::default)
                    .budget_bytes = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --budget"));
            }
            "--max-flows" if timeline_cmd => {
                timeline
                    .get_or_insert_with(TimelineConfig::default)
                    .max_flows = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --max-flows"));
            }
            "--out" if timeline_cmd => {
                let path = take(&mut i).clone();
                if path.ends_with(".cctl") {
                    timeline_format = String::from("cctl");
                }
                timeline_out = Some(path);
            }
            "--format" if timeline_cmd => {
                timeline_format = take(&mut i).clone();
                if !matches!(timeline_format.as_str(), "jsonl" | "cctl") {
                    usage(&format!("bad --format {timeline_format} (want jsonl|cctl)"));
                }
            }
            other if matches!(other, "--window" | "--budget" | "--max-flows") => usage(&format!(
                "{other} is only valid with the timeline subcommand"
            )),
            // ----- trace-only flags --------------------------------------
            "--out" if tracing => out = take(&mut i).clone(),
            "--format" if tracing => {
                format = take(&mut i).clone();
                if !matches!(format.as_str(), "jsonl" | "bin" | "both") {
                    usage(&format!("bad --format {format}"));
                }
            }
            "--policy" if tracing => trace_cfg.policy = parse_policy(take(&mut i)),
            "--trace-budget" if tracing => {
                trace_cfg.max_bytes = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --trace-budget"));
            }
            "--queue-every" if tracing => {
                trace_cfg.queue_sample_every = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --queue-every"));
            }
            "--sync-bin" if tracing => {
                sync_bin = SimDuration::from_millis(
                    take(&mut i)
                        .parse()
                        .unwrap_or_else(|_| usage("bad --sync-bin")),
                );
            }
            other
                if matches!(
                    other,
                    "--out"
                        | "--format"
                        | "--policy"
                        | "--trace-budget"
                        | "--queue-every"
                        | "--sync-bin"
                ) =>
            {
                usage(&format!(
                    "{other} is only valid with the trace (or timeline) subcommand"
                ))
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if resume_from.is_some() {
        // The checkpoint carries its own scenario; re-specifying one (or
        // mixing in other run modes) would silently be ignored.
        if !flows.is_empty() || tracing || perf || timeline_cmd {
            usage("--resume-from runs the checkpoint's own scenario (plain run only; no --flows)");
        }
        if metrics_out.is_some()
            || crash_dir.is_some()
            || force_panic.is_some()
            || checkpoint_at.is_some()
            || timeline.is_some()
            || serve_port.is_some()
        {
            usage("--resume-from cannot be combined with --metrics/--crash-dir/--force-panic/--checkpoint-at/--timeline/--serve");
        }
    } else {
        if flows.is_empty() {
            usage("at least one --flows group required");
        }
        scenario = scenario.flows(flows);
        if let Some(f) = fidelity {
            scenario = scenario.fidelity(f);
        }
        if tracing {
            scenario = scenario.traced(trace_cfg);
        }
        if scenario.warmup < scenario.start_jitter {
            scenario.start_jitter = scenario.warmup;
        }
        scenario = scenario.faulted(fault);
        if watchdog {
            scenario = scenario.watched(WatchdogConfig::every_slice());
        }
        if let Err(e) = scenario.validate() {
            usage(&format!("invalid scenario: {e}"));
        }
    }
    if metrics_out.is_some() && (crash_dir.is_some() || force_panic.is_some()) {
        usage("--metrics cannot be combined with --crash-dir/--force-panic");
    }
    if perf && (crash_dir.is_some() || force_panic.is_some()) {
        usage("perf cannot be combined with --crash-dir/--force-panic");
    }
    if (timeline.is_some() || serve_port.is_some())
        && (crash_dir.is_some() || force_panic.is_some())
    {
        usage("--timeline/--serve cannot be combined with --crash-dir/--force-panic");
    }
    if checkpoint_at.is_some() && (tracing || crash_dir.is_some() || force_panic.is_some()) {
        usage("--checkpoint-at works with run and perf only (not trace/--crash-dir/--force-panic)");
    }
    Cli {
        tracing,
        perf,
        timeline_cmd,
        scenario,
        json,
        quiet,
        metrics_out,
        out,
        format,
        sync_bin,
        crash_dir,
        force_panic,
        folded_out,
        stride,
        checkpoint_at,
        checkpoint_out,
        resume_from,
        timeline,
        timeline_out,
        timeline_format,
        serve_port,
    }
}

const CAMPAIGN_USAGE: &str = "usage: ccsim campaign run <spec.json> [--workers N] \
    [--ledger <path>] [--report <path>] [--html] [--crash-dir <dir>] \
    [--bench <path>] [--profile] [--quiet] [--resume <ledger>] \
    [--timeline] [--timeline-window <ms>] [--serve <port>] \
    [--job-budget <s>] [--heartbeat-timeout <s>] [--retries N] \
    [--backoff <ms>] [--force-panic-job <substr>] [--force-hang-job <substr>]\n\
    \x20      ccsim campaign report <ledger.jsonl> [--out <path>] [--html]\n\
    \x20      ccsim campaign diff <baseline.jsonl> <current.jsonl> \
    [--eps-tol <frac>] [--skip-eps]";

/// Bad campaign invocation: complaint + usage to stderr, exit 2.
fn campaign_usage(err: &str) -> ! {
    eprintln!("{err}\n\n{CAMPAIGN_USAGE}");
    std::process::exit(2);
}

/// Requested campaign help: usage to stdout, exit 0.
fn campaign_help() -> ! {
    println!("{CAMPAIGN_USAGE}");
    println!(
        "\nrun expands the spec (scenario template x axes x seeds) on a worker\n\
         pool and appends every result to an append-only JSONL ledger\n\
         (default <campaign-name>.ledger.jsonl). Exit 0 when every job\n\
         succeeded, 1 otherwise. --report also renders the fidelity report;\n\
         --bench writes a machine-readable run summary. --profile attaches\n\
         the digest-inert ccsim-prof profiler to every job, embedding a\n\
         Profile section and per-event-kind events/s in each ledger entry\n\
         (what the sentinel's per-kind eps gate compares). --timeline\n\
         attaches the digest-inert windowed sampler to every job, filling\n\
         each entry's convergence_time (time-to-α-fair) — what the\n\
         sentinel's convergence gate and the report's convergence columns\n\
         read; --timeline-window tunes the window. --serve <port> serves\n\
         the campaign live at http://127.0.0.1:<port>/metrics and\n\
         /timeline.jsonl (the most recently progressing job wins).\n\
         report renders a ledger as Markdown (or --html) to --out or stdout.\n\
         diff is the regression sentinel: it compares two ledgers of the\n\
         same campaign and exits 1 on any finding — outcome-digest change\n\
         (determinism break), paper-metric drift beyond the baseline's\n\
         stored tolerances, or an events/sec regression beyond --eps-tol\n\
         (default from the baseline header, 10%). --skip-eps disables the\n\
         throughput gate for cross-machine comparisons.\n\
         Supervision: --job-budget caps each attempt's wall-clock seconds;\n\
         --heartbeat-timeout declares an attempt hung after that many\n\
         seconds without a progress heartbeat; failed attempts retry up to\n\
         --retries times (linear --backoff ms between attempts) before the\n\
         job is quarantined. The campaign always runs to completion and\n\
         reports quarantined jobs at the end.\n\
         --resume <ledger> reloads a prior (possibly killed) campaign's\n\
         ledger, truncates a torn final line, skips every job whose config\n\
         digest already has a successful entry, and appends the rest to\n\
         the same file. --force-panic-job/--force-hang-job are testing\n\
         hooks: jobs whose name contains the substring panic or hang at\n\
         their first progress report."
    );
    std::process::exit(0);
}

/// Exit 1 with a message — runtime (not usage) failures.
fn fail(msg: impl AsRef<str>) -> ! {
    eprintln!("{}", msg.as_ref());
    std::process::exit(1);
}

fn load_ledger(path: &str) -> ccsim::campaign::Ledger {
    ccsim::campaign::Ledger::load(Path::new(path))
        .unwrap_or_else(|e| fail(format!("cannot load ledger {path}: {e}")))
}

/// The `campaign run` subcommand.
fn campaign_run(args: &[String]) -> ! {
    use ccsim::campaign::{
        run_campaign_supervised, CampaignSpec, ExecutorOptions, Ledger, LedgerEntry, LedgerWriter,
        SupervisorOptions,
    };
    use ccsim::telemetry::CampaignProgress;

    let mut spec_path = None;
    let mut opts = ExecutorOptions::default();
    let mut sup = SupervisorOptions::default();
    let mut ledger_path = None;
    let mut report_path = None;
    let mut bench_path = None;
    let mut resume_path: Option<String> = None;
    let mut serve_port: Option<u16> = None;
    let mut html = false;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> &String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| campaign_usage("missing value"))
        };
        match args[i].as_str() {
            "--workers" => {
                opts.workers = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| campaign_usage("bad --workers"));
            }
            "--ledger" => ledger_path = Some(take(&mut i).clone()),
            "--report" => report_path = Some(take(&mut i).clone()),
            "--bench" => bench_path = Some(take(&mut i).clone()),
            "--crash-dir" => opts.crash_dir = Some(PathBuf::from(take(&mut i))),
            "--profile" => opts.profile = true,
            "--timeline" => {
                opts.timeline.get_or_insert_with(TimelineConfig::default);
            }
            "--timeline-window" => {
                let ms: u64 = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| campaign_usage("bad --timeline-window"));
                if ms == 0 {
                    campaign_usage("--timeline-window must be at least 1 ms");
                }
                opts.timeline
                    .get_or_insert_with(TimelineConfig::default)
                    .window = SimDuration::from_millis(ms);
            }
            "--serve" => {
                serve_port = Some(
                    take(&mut i)
                        .parse()
                        .unwrap_or_else(|_| campaign_usage("bad --serve port")),
                );
            }
            "--resume" => resume_path = Some(take(&mut i).clone()),
            "--job-budget" => {
                let secs: f64 = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| campaign_usage("bad --job-budget"));
                sup.job_budget = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--heartbeat-timeout" => {
                let secs: f64 = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| campaign_usage("bad --heartbeat-timeout"));
                sup.heartbeat_timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--retries" => {
                sup.max_retries = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| campaign_usage("bad --retries"));
            }
            "--backoff" => {
                let ms: u64 = take(&mut i)
                    .parse()
                    .unwrap_or_else(|_| campaign_usage("bad --backoff"));
                sup.backoff = std::time::Duration::from_millis(ms);
            }
            "--force-panic-job" => sup.force_panic_jobs = Some(take(&mut i).clone()),
            "--force-hang-job" => sup.force_hang_jobs = Some(take(&mut i).clone()),
            "--html" => html = true,
            "--quiet" => quiet = true,
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(other.to_string());
            }
            other => campaign_usage(&format!("unknown campaign run argument {other}")),
        }
        i += 1;
    }
    let spec_path = spec_path.unwrap_or_else(|| campaign_usage("campaign run needs a spec file"));
    if resume_path.is_some() && ledger_path.is_some() {
        campaign_usage("--resume appends to the given ledger; --ledger would name a second one");
    }
    let text = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| fail(format!("cannot read spec {spec_path}: {e}")));
    let spec = CampaignSpec::from_json(&text)
        .unwrap_or_else(|e| fail(format!("bad campaign spec {spec_path}: {e}")));
    let mut jobs = spec
        .jobs()
        .unwrap_or_else(|e| fail(format!("cannot expand campaign: {e}")));
    let total_jobs = jobs.len();
    let (ledger_path, writer) = match &resume_path {
        Some(path) => {
            // Skip every job whose config digest already has a successful
            // entry, then append the remainder to the same file (torn
            // final line truncated first).
            let prior = Ledger::load(Path::new(path))
                .unwrap_or_else(|e| fail(format!("cannot load resume ledger {path}: {e}")));
            if prior.campaign != spec.name {
                fail(format!(
                    "resume ledger {path} is for campaign \"{}\", spec is \"{}\"",
                    prior.campaign, spec.name
                ));
            }
            let done = prior.completed_digests();
            jobs.retain(|j| {
                let digest = format!(
                    "{:016x}",
                    ccsim::experiments::observe::scenario_digest(&j.scenario)
                );
                !done.contains(&digest)
            });
            eprintln!(
                "resuming campaign {}: {} of {total_jobs} jobs already complete, {} to run",
                spec.name,
                total_jobs - jobs.len(),
                jobs.len()
            );
            let writer = LedgerWriter::resume(Path::new(path))
                .unwrap_or_else(|e| fail(format!("cannot reopen ledger {path}: {e}")));
            (path.clone(), writer)
        }
        None => {
            let path = ledger_path.unwrap_or_else(|| format!("{}.ledger.jsonl", spec.name));
            let writer = LedgerWriter::create(
                Path::new(&path),
                &spec.name,
                &spec.tolerances,
                &spec.expectations,
            )
            .unwrap_or_else(|e| fail(format!("cannot create ledger {path}: {e}")));
            (path, writer)
        }
    };

    eprintln!(
        "campaign {}: {} jobs on {} workers -> {ledger_path}",
        spec.name,
        jobs.len(),
        opts.workers
    );
    // Bind before dispatching jobs so the endpoint is up for the whole
    // campaign; every worker publishes through the shared state.
    let serve_handle = serve_port.map(|port| {
        let state = std::sync::Arc::new(LiveState::new());
        opts.live = Some(std::sync::Arc::clone(&state));
        let handle = ccsim::experiments::serve(port, std::sync::Arc::clone(&state))
            .unwrap_or_else(|e| fail(format!("cannot bind --serve port {port}: {e}")));
        eprintln!(
            "serving http://{0}/metrics and http://{0}/timeline.jsonl for the campaign",
            handle.addr()
        );
        (state, handle)
    });
    let progress = (!quiet).then(|| CampaignProgress::new(&spec.name, jobs.len()));
    // The ledger is appended in completion order from worker threads; a
    // write failure is recorded and reported once at the end.
    let sink = std::sync::Mutex::new((writer, None::<std::io::Error>));
    let results = run_campaign_supervised(jobs, &opts, &sup, |r| {
        let entry = LedgerEntry::from_result(r);
        let mut sink = sink.lock().unwrap();
        if sink.1.is_none() {
            if let Err(e) = sink.0.append(&entry) {
                sink.1 = Some(e);
            }
        }
        if let Some(p) = &progress {
            p.job_done(&entry.job, entry.events_processed, entry.ok());
        }
    });
    if let Some(p) = &progress {
        p.finish();
    }
    if let Some((state, handle)) = serve_handle {
        eprintln!(
            "live endpoint served {} request(s); shutting down",
            state.hits()
        );
        handle.stop();
    }
    if let Some(e) = sink.into_inner().unwrap().1 {
        fail(format!("ledger write failed: {e}"));
    }

    let failed: Vec<_> = results.iter().filter(|r| r.run.is_err()).collect();
    for r in &failed {
        eprintln!(
            "{} {} after {} attempt{}: {}{}",
            if r.quarantined {
                "QUARANTINED"
            } else {
                "FAILED"
            },
            r.job.name,
            r.attempts,
            if r.attempts == 1 { "" } else { "s" },
            r.run.as_ref().err().unwrap(),
            r.crash_bundle
                .as_ref()
                .map(|p| format!(" (replay with: ccsim replay {})", p.display()))
                .unwrap_or_default()
        );
    }
    if let Some(path) = &bench_path {
        let ledger = load_ledger(&ledger_path);
        // events_per_sec divides by engine dispatch time only (scenario
        // build, warmup slicing, and export wall time excluded) so the
        // number is comparable with the sentinel's eps gate; wall_secs
        // stays in the summary as the end-to-end record.
        let (events, wall, dispatch): (u64, f64, f64) = ledger
            .ok_entries()
            .map(|e| {
                (
                    e.events_processed,
                    e.wall_secs,
                    e.manifest.as_ref().map_or(0.0, |m| m.dispatch_secs),
                )
            })
            .fold((0, 0.0, 0.0), |(ev, w, d), (e, ws, ds)| {
                (ev + e, w + ws, d + ds)
            });
        // With --profile attached, also record the worst memory-per-flow
        // across the campaign's jobs — the megascale headline number and
        // the input to CI's per-flow memory ceiling.
        let peak_mem = ledger
            .ok_entries()
            .filter_map(|e| {
                let p = e.manifest.as_ref()?.profile.as_ref()?;
                (p.flows > 0).then(|| (p.memory_total_bytes(), p.flows))
            })
            .max_by(|a, b| {
                let pf = |(bytes, flows): &(u64, u32)| *bytes as f64 / f64::from(*flows);
                pf(a).total_cmp(&pf(b))
            });
        let mem_fields = peak_mem.map_or_else(String::new, |(bytes, flows)| {
            format!(
                ",\"memory_bytes_peak\":{bytes},\"memory_peak_flows\":{flows},\
                 \"memory_per_flow_bytes\":{}",
                ccsim::sim::jsonfmt::json_f64(bytes as f64 / f64::from(flows))
            )
        });
        let summary = format!(
            "{{\"campaign\":\"{}\",\"jobs\":{},\"failed\":{},\"events\":{events},\
             \"wall_secs\":{},\"dispatch_secs\":{},\"events_per_sec\":{}{mem_fields}}}",
            spec.name,
            results.len(),
            failed.len(),
            ccsim::sim::jsonfmt::json_f64(wall),
            ccsim::sim::jsonfmt::json_f64(dispatch),
            ccsim::sim::jsonfmt::json_f64(ccsim::sim::jsonfmt::safe_rate(events as f64, dispatch)),
        );
        std::fs::write(path, summary).unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &report_path {
        write_campaign_report(&load_ledger(&ledger_path), path, html);
    }
    std::process::exit(if failed.is_empty() { 0 } else { 1 });
}

fn write_campaign_report(ledger: &ccsim::campaign::Ledger, path: &str, html: bool) {
    let rendered = if html {
        ccsim::campaign::report::html(ledger)
    } else {
        ccsim::campaign::report::markdown(ledger)
    };
    if path == "-" {
        print!("{rendered}");
    } else {
        std::fs::write(path, rendered)
            .unwrap_or_else(|e| fail(format!("cannot write report {path}: {e}")));
        eprintln!("wrote {path}");
    }
}

/// The `campaign report` subcommand.
fn campaign_report(args: &[String]) -> ! {
    let mut ledger_path = None;
    let mut out = String::from("-");
    let mut html = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .unwrap_or_else(|| campaign_usage("missing value"))
                    .clone();
            }
            "--html" => html = true,
            other if ledger_path.is_none() && !other.starts_with('-') => {
                ledger_path = Some(other.to_string());
            }
            other => campaign_usage(&format!("unknown campaign report argument {other}")),
        }
        i += 1;
    }
    let ledger_path =
        ledger_path.unwrap_or_else(|| campaign_usage("campaign report needs a ledger file"));
    write_campaign_report(&load_ledger(&ledger_path), &out, html);
    std::process::exit(0);
}

/// The `campaign diff` subcommand — the regression sentinel.
fn campaign_diff(args: &[String]) -> ! {
    let mut paths = Vec::new();
    let mut opts = ccsim::campaign::DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--eps-tol" => {
                i += 1;
                opts.eps_tol = Some(
                    args.get(i)
                        .unwrap_or_else(|| campaign_usage("missing value"))
                        .parse()
                        .unwrap_or_else(|_| campaign_usage("bad --eps-tol")),
                );
            }
            "--skip-eps" => opts.check_eps = false,
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => campaign_usage(&format!("unknown campaign diff argument {other}")),
        }
        i += 1;
    }
    if paths.len() != 2 {
        campaign_usage("campaign diff needs exactly two ledger files");
    }
    let baseline = load_ledger(&paths[0]);
    let current = load_ledger(&paths[1]);
    let report = ccsim::campaign::diff(&baseline, &current, &opts);
    print!("{}", report.render());
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

/// The `campaign` subcommand family: run, report, diff.
fn campaign(args: &[String]) -> ! {
    if args.iter().any(|a| matches!(a.as_str(), "--help" | "-h")) {
        campaign_help();
    }
    match args.get(1).map(String::as_str) {
        Some("run") => campaign_run(&args[2..]),
        Some("report") => campaign_report(&args[2..]),
        Some("diff") => campaign_diff(&args[2..]),
        Some(other) => campaign_usage(&format!(
            "unknown campaign subcommand '{other}' (want run, report, or diff)"
        )),
        None => campaign_usage("campaign needs a subcommand: run, report, or diff"),
    }
}

/// The `run --resume-from` path: restore a checkpoint, run it out.
fn resume_run(cli: &Cli, path: &Path) -> ! {
    use ccsim::experiments::{scenario_from_checkpoint, try_resume_run_with_progress, Checkpoint};
    let cp = Checkpoint::read_file(path)
        .unwrap_or_else(|e| fail(format!("cannot load checkpoint {}: {e}", path.display())));
    let scenario = scenario_from_checkpoint(&cp)
        .unwrap_or_else(|e| fail(format!("bad checkpoint {}: {e}", path.display())));
    eprintln!(
        "resuming {} at t={} ({} snapshot bytes, state digest {:016x})...",
        scenario.name,
        SimTime::from_nanos(cp.taken_at_nanos),
        cp.encoded_len(),
        cp.state_digest(),
    );
    let mut progress = (!cli.quiet).then(|| RunProgress::new("resume"));
    let outcome = try_resume_run_with_progress(&cp, |p| {
        if let Some(prog) = &mut progress {
            prog.update(p.fraction, p.events_processed);
        }
    })
    .unwrap_or_else(|e| fail(format!("resume failed: {e}")));
    if let Some(prog) = &mut progress {
        prog.finish(outcome.events_processed);
    }
    if cli.json {
        println!("{}", outcome.to_json());
    } else {
        print_human(&outcome);
    }
    eprintln!("outcome digest  : {:016x}", outcome.digest());
    std::process::exit(0);
}

/// Report a captured checkpoint (or its absence) after a
/// `--checkpoint-at` run.
fn write_checkpoint(cp: &Option<ccsim::experiments::Checkpoint>, out: &Path, requested: SimTime) {
    match cp {
        Some(cp) => {
            cp.write_file(out).unwrap_or_else(|e| {
                fail(format!("cannot write checkpoint {}: {e}", out.display()))
            });
            eprintln!(
                "wrote {} ({} bytes, t={}, state digest {:016x})",
                out.display(),
                cp.encoded_len(),
                SimTime::from_nanos(cp.taken_at_nanos),
                cp.state_digest(),
            );
        }
        None => eprintln!("no checkpoint written: the run ended before t={requested}"),
    }
}

/// The `bisect` subcommand: binary-search two scenarios' checkpoint
/// slices for the first divergent engine state.
fn bisect(args: &[String]) -> ! {
    use ccsim::experiments::{bisect_divergence, scenario_from_json};
    let mut paths = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| usage("missing value")),
                ));
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => usage(&format!("unknown bisect argument {other}")),
        }
        i += 1;
    }
    if paths.len() != 2 {
        usage("bisect needs exactly two scenario JSON files");
    }
    let load = |p: &str| -> Scenario {
        let text =
            std::fs::read_to_string(p).unwrap_or_else(|e| fail(format!("cannot read {p}: {e}")));
        scenario_from_json(&text).unwrap_or_else(|e| fail(format!("bad scenario {p}: {e}")))
    };
    let a = load(&paths[0]);
    let b = load(&paths[1]);
    eprintln!("bisecting '{}' vs '{}'...", a.name, b.name);
    let mut probes = 0usize;
    let outcome = bisect_divergence(&a, &b, &mut |slice, at, diverged| {
        probes += 1;
        eprintln!(
            "  probe {probes}: slice {slice} (t={at}) -> {}",
            if diverged { "diverges" } else { "identical" }
        );
    })
    .unwrap_or_else(|e| fail(format!("bisect failed: {e}")));
    match outcome.first_divergence {
        None => {
            println!(
                "identical: engine states agree at all {} checkpoint slices",
                outcome.boundaries.len()
            );
            std::process::exit(0);
        }
        Some(d) => {
            println!(
                "first divergent slice: {} of {} (t={})",
                d.slice,
                outcome.boundaries.len(),
                d.at
            );
            println!(
                "state digests   : {:016x} vs {:016x}",
                d.digest_a, d.digest_b
            );
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", dir.display())));
                for (name, cp) in [
                    ("diverge-a.ckpt", &d.checkpoint_a),
                    ("diverge-b.ckpt", &d.checkpoint_b),
                ] {
                    let path = dir.join(name);
                    cp.write_file(&path)
                        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", path.display())));
                    println!("wrote {}", path.display());
                }
            }
            std::process::exit(1);
        }
    }
}

/// The `replay` subcommand: load a crash bundle, re-run its scenario.
fn replay(args: &[String]) -> ! {
    let mut dir = None;
    let mut json = false;
    let mut quiet = false;
    for a in &args[1..] {
        match a.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => usage(&format!("unknown replay argument {other}")),
        }
    }
    let dir = dir.unwrap_or_else(|| usage("replay needs a bundle directory"));
    let bundle = CrashBundle::load(&dir).unwrap_or_else(|e| {
        eprintln!("cannot load crash bundle {}: {e}", dir.display());
        std::process::exit(1);
    });
    eprintln!(
        "replaying {} (seed {}, {} fault actions; captured failure: [{}] {})",
        bundle.scenario.name,
        bundle.scenario.seed,
        bundle.scenario.fault.sorted_actions().len(),
        bundle.error_class,
        bundle.error
    );
    let mut progress = (!quiet).then(|| RunProgress::new("replay"));
    let result = ccsim::experiments::try_run_with_progress(&bundle.scenario, |p| {
        if let Some(prog) = &mut progress {
            prog.update(p.fraction, p.events_processed);
        }
    });
    match result {
        Ok(outcome) => {
            if let Some(prog) = &mut progress {
                prog.finish(outcome.events_processed);
            }
            if json {
                println!("{}", outcome.to_json());
            } else {
                print_human(&outcome);
            }
            println!("outcome digest  : {:016x}", outcome.digest());
            println!("replay clean    : captured failure did not reproduce");
            std::process::exit(0);
        }
        Err(e) => {
            println!("failure reproduced: {e}");
            std::process::exit(3);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("replay") {
        if args.iter().any(|a| matches!(a.as_str(), "--help" | "-h")) {
            help();
        }
        replay(&args);
    }
    if args.first().map(String::as_str) == Some("campaign") {
        campaign(&args);
    }
    if args.first().map(String::as_str) == Some("bisect") {
        if args.iter().any(|a| matches!(a.as_str(), "--help" | "-h")) {
            help();
        }
        bisect(&args);
    }
    let cli = parse_cli(&args);
    if let Some(path) = cli.resume_from.clone() {
        resume_run(&cli, &path);
    }
    let scenario = &cli.scenario;

    eprintln!(
        "running {} flows on {} (buffer {:.2} MB, warmup {}, duration {})...",
        scenario.flow_count(),
        scenario.bottleneck,
        scenario.buffer_bytes as f64 / 1e6,
        scenario.warmup,
        scenario.duration
    );
    let mut progress = (!cli.quiet).then(|| RunProgress::new("ccsim"));
    let mut on_progress = |p: &ccsim::experiments::Progress| {
        if let Some(prog) = &mut progress {
            prog.update(p.fraction, p.events_processed);
        }
    };

    let mut perf_table = None;
    let mut timeline_capture: Option<Timeline> = None;
    let observed =
        cli.perf || cli.metrics_out.is_some() || cli.timeline.is_some() || cli.serve_port.is_some();
    let outcome = if observed {
        let options = ObserveOptions {
            profile: cli.perf,
            profile_stride: cli.stride,
            timeline: cli.timeline,
        };
        // The endpoint binds before the run and serves snapshots the
        // progress hook publishes; it never touches simulator state.
        let live = cli.serve_port.map(|port| {
            let state = std::sync::Arc::new(LiveState::new());
            let handle = ccsim::experiments::serve(port, std::sync::Arc::clone(&state))
                .unwrap_or_else(|e| fail(format!("cannot bind --serve port {port}: {e}")));
            eprintln!(
                "serving http://{0}/metrics and http://{0}/timeline.jsonl for the run",
                handle.addr()
            );
            (state, handle)
        });
        let (mut obs, cp) = ccsim::experiments::try_run_observed_live(
            scenario,
            options,
            cli.checkpoint_at,
            live.as_ref().map(|(state, _)| std::sync::Arc::clone(state)),
            &mut on_progress,
        )
        .unwrap_or_else(|e| fail(format!("run failed: {e}")));
        if let Some((state, handle)) = live {
            eprintln!(
                "live endpoint served {} request(s); shutting down",
                state.hits()
            );
            handle.stop();
        }
        timeline_capture = obs.timeline.take();
        if let Some(prog) = &mut progress {
            prog.finish(obs.outcome.events_processed);
        }
        if let Some(at) = cli.checkpoint_at {
            write_checkpoint(&cp, &cli.checkpoint_out, at);
        }
        if let Some(metrics_path) = &cli.metrics_out {
            if let Err(e) = validate_exposition(&obs.prometheus) {
                eprintln!("internal error: metrics dump failed validation: {e}");
                std::process::exit(1);
            }
            let manifest_path = Path::new(metrics_path).with_extension("manifest.json");
            let write = |path: &Path, contents: &str| {
                std::fs::write(path, contents).unwrap_or_else(|e| {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(1);
                });
            };
            write(Path::new(metrics_path), &obs.prometheus);
            write(&manifest_path, &obs.manifest.to_json());
            eprintln!(
                "wrote {metrics_path} ({} series) and {} (outcome digest {})",
                obs.manifest.metric_series,
                manifest_path.display(),
                obs.manifest.outcome_digest
            );
        }
        if cli.perf {
            let profile = obs
                .manifest
                .profile
                .as_ref()
                .unwrap_or_else(|| fail("internal error: profiled run produced no profile"));
            if let Some(path) = &cli.folded_out {
                std::fs::write(path, profile.to_folded())
                    .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
                eprintln!("wrote {path}");
            }
            perf_table = Some(profile.render_table());
        }
        obs.outcome
    } else if cli.crash_dir.is_some() || cli.force_panic.is_some() {
        let opts = GuardOptions {
            bundle_dir: cli.crash_dir.clone(),
            force_panic_at: cli.force_panic,
        };
        match run_guarded_with_progress(scenario, &opts, &mut on_progress) {
            Ok(outcome) => {
                if let Some(prog) = &mut progress {
                    prog.finish(outcome.events_processed);
                }
                outcome
            }
            Err(failure) => {
                eprintln!("\nrun failed: {failure}");
                if let Some(e) = &failure.write_error {
                    eprintln!("crash-bundle write failed: {e}");
                }
                if let Some(dir) = &failure.bundle {
                    eprintln!("replay with: ccsim replay {}", dir.display());
                }
                std::process::exit(1);
            }
        }
    } else if let Some(at) = cli.checkpoint_at {
        let (outcome, cp) = ccsim::experiments::try_run_with_checkpoint(scenario, at)
            .unwrap_or_else(|e| fail(format!("run failed: {e}")));
        write_checkpoint(&cp, &cli.checkpoint_out, at);
        outcome
    } else {
        let outcome = run_with_progress(scenario, &mut on_progress);
        if let Some(prog) = &mut progress {
            prog.finish(outcome.events_processed);
        }
        outcome
    };

    if cli.json {
        println!("{}", outcome.to_json());
    } else {
        print_human(&outcome);
    }
    if let Some(table) = &perf_table {
        println!();
        print!("{table}");
    }
    if let Some(tl) = &timeline_capture {
        if cli.timeline_cmd {
            println!();
            print_timeline_summary(tl);
        }
        if let Some(path) = &cli.timeline_out {
            let bytes = if cli.timeline_format == "cctl" {
                ccsim::timeline::export::to_binary(tl)
            } else {
                ccsim::timeline::export::to_jsonl(tl).into_bytes()
            };
            std::fs::write(path, bytes)
                .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
            eprintln!("wrote {path} ({})", cli.timeline_format);
        }
    }

    if cli.tracing {
        let written = outcome
            .export_trace(
                Path::new(&cli.out),
                matches!(cli.format.as_str(), "jsonl" | "both"),
                matches!(cli.format.as_str(), "bin" | "both"),
            )
            .unwrap_or_else(|e| {
                eprintln!("trace export failed: {e}");
                std::process::exit(1);
            });
        print_trace_summary(&outcome, cli.sync_bin);
        for path in written {
            println!("wrote {}", path.display());
        }
    }
}

/// The `ccsim timeline` capture summary: row accounting, convergence,
/// and a unicode JFI trajectory over the retained measurement windows.
fn print_timeline_summary(tl: &Timeline) {
    let s = tl.summary();
    println!(
        "timeline        : {} rows ({} retained, {} evicted), window {} s",
        s.rows, s.retained, s.evicted, s.window_secs
    );
    println!(
        "  flows sampled : {} of the run's flows ({} series, {:.1} KB retained)",
        s.flows_sampled,
        s.series,
        tl.memory_bytes() as f64 / 1e3
    );
    match s.time_to_alpha_fair {
        Some(t) => println!("  {}-fair after : {t:.2} s of measurement", s.alpha),
        None => println!("  {}-fair after : never (JFI never reached α)", s.alpha),
    }
    if let Some(j) = s.final_jfi {
        println!("  final JFI     : {j:.4}");
    }
    let (times, jfi) = tl.jfi_series();
    if !jfi.is_empty() {
        println!(
            "  JFI trajectory: `{}` ({} windows from t={:.1} s)",
            jfi_sparkline(&jfi),
            jfi.len(),
            times.first().copied().unwrap_or(0.0)
        );
    }
}

/// Scale the per-window JFI series onto eight block glyphs; idle windows
/// (no delivery, JFI undefined) render as `·`.
fn jfi_sparkline(jfi: &[Option<f64>]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let vals: Vec<f64> = jfi.iter().copied().flatten().collect();
    let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    jfi.iter()
        .map(|v| match v {
            None => '·',
            Some(x) => {
                let f = if span > 0.0 { (x - lo) / span } else { 1.0 };
                GLYPHS[((f * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn print_trace_summary(o: &RunOutcome, sync_bin: SimDuration) {
    let Some(trace) = &o.trace else {
        return;
    };
    println!(
        "trace           : {} records ({:.2} MB wire), {} evicted, {} thinned",
        trace.records.len(),
        trace.wire_bytes() as f64 / 1e6,
        trace.evicted,
        trace.thinned
    );
    match o.trace_synchronization_index(sync_bin) {
        Some(s) => println!("sync index      : {s:.4} (bin {sync_bin})"),
        None => println!("sync index      : n/a (no congestion events in window)"),
    }
    match o.trace_drop_burstiness() {
        Some(b) => println!("drop burstiness : {b:.4} (from trace)"),
        None => println!("drop burstiness : n/a (too few recorded drops)"),
    }
}

fn print_human(o: &RunOutcome) {
    println!("measured window : {}", o.measured_for);
    println!(
        "aggregate       : {:.2} Mbps",
        o.aggregate_throughput_mbps()
    );
    println!("utilization     : {:.1}%", o.utilization() * 100.0);
    println!("loss rate       : {:.4}%", o.aggregate_loss_rate * 100.0);
    println!(
        "JFI (all flows) : {:.4}",
        o.jain_index().unwrap_or(f64::NAN)
    );
    if let Some(b) = o.drop_burstiness {
        println!("drop burstiness : {b:.3}");
    }
    for b in &o.bottlenecks {
        let jfi = match b.jfi {
            Some(j) => format!("{j:.4}"),
            None => "n/a".to_string(),
        };
        println!(
            "  bottleneck {:<2} {:<11} util {:>5.1}%  JFI {jfi}  loss {:.4}%  CE {}",
            b.link,
            b.label,
            b.utilization * 100.0,
            b.loss_rate * 100.0,
            b.ce_marked_pkts
        );
    }
    // Per-CCA aggregates.
    let mut kinds: Vec<CcaKind> = o.flow_cca.clone();
    kinds.sort_by_key(|k| k.name());
    kinds.dedup();
    for k in kinds {
        let share = o.share_of(k).unwrap_or(0.0);
        let jfi = o.jain_index_for(k).unwrap_or(f64::NAN);
        println!(
            "  {:<5} x{:<5} share {:>5.1}%   intra-JFI {:.4}",
            k.name(),
            o.count_of(k),
            share * 100.0,
            jfi
        );
    }
}
