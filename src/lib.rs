//! # ccsim — congestion control at scale
//!
//! A packet-level congestion-control simulator and measurement harness
//! reproducing *"Revisiting TCP Congestion Control Throughput Models &
//! Fairness Properties At Scale"* (Philip, Ware, Athapathu, Sherry, Sekar —
//! ACM IMC 2021).
//!
//! The facade re-exports the workspace crates:
//!
//! * [`sim`] — deterministic discrete-event engine.
//! * [`net`] — packets, links, drop-tail and AQM queues, ECN marking.
//! * [`topo`] — routed multi-bottleneck topology graphs (dumbbell,
//!   parking-lot) and their component instantiation.
//! * [`tcp`] — the TCP endpoint model (SACK, PRR, RTO, pacing).
//! * [`cca`] — NewReno, CUBIC, BBRv1.
//! * [`telemetry`] — flow metrics and throughput tracking.
//! * [`timeline`] — digest-inert windowed time-series sampler (per-flow
//!   / per-link / aggregate series in bounded columnar rings), JSONL and
//!   `.cctl` exporters, and the zero-dependency live metrics endpoint
//!   behind `ccsim run --serve`.
//! * [`analysis`] — Mathis fitting, JFI, burstiness, statistics.
//! * [`trace`] — the memory-bounded flight recorder (cwnd/srtt/queue
//!   traces, JSONL + columnar binary export).
//! * [`fault`] — deterministic link fault plans (blackouts, loss,
//!   reordering, rate steps) and the invariant-watchdog vocabulary.
//! * [`prof`] — digest-inert event-attribution profiler: per-(component
//!   class × event kind) wall-time/event matrix, timer-wheel internals,
//!   and subsystem memory accounts (`ccsim perf`).
//! * [`resume`] — versioned, digest-stamped checkpoint container with
//!   typed decode errors; the engine-state snapshots behind
//!   `ccsim run --checkpoint-at`/`--resume-from` and `ccsim bisect`.
//! * [`experiments`] — the paper's EdgeScale/CoreScale scenarios and the
//!   per-figure experiment functions.
//! * [`campaign`] — parallel sweep executor, persistent run ledger,
//!   regression sentinel (`campaign diff`), and fidelity reports.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ccsim::experiments::{Scenario, FlowGroup};
//! use ccsim::cca::CcaKind;
//! use ccsim_sim::SimDuration;
//!
//! // 20 NewReno flows on an EdgeScale (100 Mbps) bottleneck, 20 ms RTT.
//! let scenario = Scenario::edge_scale()
//!     .flows(vec![FlowGroup::new(CcaKind::Reno, 20, SimDuration::from_millis(20))])
//!     .seed(1);
//! let outcome = scenario.run();
//! println!("aggregate throughput: {:.1} Mbps", outcome.aggregate_throughput_mbps());
//! println!("JFI: {:.3}", outcome.jain_index().unwrap());
//! ```

pub use ccsim_analysis as analysis;
pub use ccsim_campaign as campaign;
pub use ccsim_cca as cca;
pub use ccsim_core as experiments;
pub use ccsim_fault as fault;
pub use ccsim_net as net;
pub use ccsim_prof as prof;
pub use ccsim_resume as resume;
pub use ccsim_sim as sim;
pub use ccsim_tcp as tcp;
pub use ccsim_telemetry as telemetry;
pub use ccsim_timeline as timeline;
pub use ccsim_topo as topo;
pub use ccsim_trace as trace;
